// Trace/Gantt export tests, plus overlap-structure assertions on real
// trainer timelines (the testable core of Fig. 8).
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "baselines/baseline_trainer.hpp"
#include "gpusim/trace.hpp"
#include "pipad/pipad_trainer.hpp"
#include "test_util.hpp"

namespace pipad {
namespace {

using gpusim::Resource;
using gpusim::Timeline;

TEST(Trace, CsvContainsEveryOp) {
  Timeline tl;
  tl.submit(0, Resource::Compute, "kernel:a", 10.0);
  tl.submit(0, Resource::H2D, "h2d:x", 5.0, 0.0, 1234);
  std::ostringstream os;
  gpusim::write_trace_csv(tl, os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("kernel:a,compute,0,"), std::string::npos);
  EXPECT_NE(csv.find("h2d:x,h2d,0,"), std::string::npos);
  EXPECT_NE(csv.find("1234"), std::string::npos);
  // Header + 2 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(Trace, CsvCarriesWorkerStealCounters) {
  Timeline tl;
  tl.set_worker_lanes(2);
  tl.submit_worker(0, "compute:agg", 10.0, 0.0, /*steals=*/3, /*blocks=*/32);
  tl.submit_worker(1, "compute:agg", 9.0);
  std::ostringstream os;
  gpusim::write_trace_csv(tl, os);
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("name,resource,stream,start_us,end_us,bytes,lane,"
                      "steals,blocks\n", 0), 0u)
      << csv;
  // First lane op of the region carries the counters; the rest stay 0.
  EXPECT_NE(csv.find(",0,3,32\n"), std::string::npos) << csv;
  EXPECT_NE(csv.find(",1,0,0\n"), std::string::npos) << csv;
}

TEST(Trace, GanttMarksBusyCells) {
  Timeline tl;
  const auto s = tl.create_stream("c");
  tl.submit(0, Resource::Compute, "k", 50.0);
  tl.submit(s, Resource::H2D, "t", 100.0);
  gpusim::GanttOptions opts;
  opts.width = 10;
  const std::string g = gpusim::render_gantt(tl, opts);
  // Compute lane busy for the first half only; H2D for the whole window.
  EXPECT_NE(g.find("h2d         ##########"), std::string::npos) << g;
  EXPECT_NE(g.find("compute     #####....."), std::string::npos) << g;
}

TEST(Trace, OverlapFractionExactOnSyntheticSchedule) {
  Timeline tl;
  const auto s = tl.create_stream("c");
  tl.submit(0, Resource::Compute, "k", 60.0);   // [0, 60)
  tl.submit(s, Resource::H2D, "t", 100.0);      // [0, 100)
  // Both busy on [0, 60) of a 100 us window.
  EXPECT_NEAR(gpusim::overlap_fraction(tl, Resource::Compute, Resource::H2D),
              0.6, 1e-9);
}

TEST(Trace, NoOverlapWhenSerialized) {
  Timeline tl;
  tl.submit(0, Resource::H2D, "t", 40.0);
  tl.submit(0, Resource::Compute, "k", 40.0);  // Starts after t (stream 0).
  EXPECT_NEAR(gpusim::overlap_fraction(tl, Resource::Compute, Resource::H2D),
              0.0, 1e-9);
}

TEST(Trace, PipadOverlapsCopyAndComputeMoreThanPygt) {
  const auto g = graph::generate(testutil::tiny_config(64, 12, 2));
  models::TrainConfig cfg;
  cfg.model = models::ModelType::MpnnLstm;
  cfg.frame_size = 4;
  cfg.epochs = 2;
  cfg.max_frames_per_epoch = 3;
  cfg.hidden_dim = 6;

  gpusim::Gpu gpu_base;
  baselines::BaselineTrainer base(gpu_base, g, cfg,
                                  baselines::Variant::PyGT);
  base.train();
  gpusim::Gpu gpu_pipad;
  runtime::PipadTrainer pipad(gpu_pipad, g, cfg);
  pipad.train();

  const double base_ov = gpusim::overlap_fraction(
      gpu_base.timeline(), Resource::H2D, Resource::Compute);
  const double pipad_ov = gpusim::overlap_fraction(
      gpu_pipad.timeline(), Resource::H2D, Resource::Compute);
  // PyGT's synchronous copies leave at most a sliver of overlap (in-flight
  // kernels from the previous frame); PiPAD's pipeline overlaps visibly.
  EXPECT_LT(base_ov, 0.05);
  EXPECT_GT(pipad_ov, base_ov);
}

TEST(Trace, GanttWindowClipping) {
  Timeline tl;
  tl.submit(0, Resource::Compute, "k", 100.0);
  gpusim::GanttOptions opts;
  opts.width = 10;
  opts.from_us = 200.0;  // Entirely after the op.
  opts.to_us = 300.0;
  const std::string gantt = gpusim::render_gantt(tl, opts);
  EXPECT_NE(gantt.find("compute     .........."), std::string::npos) << gantt;
}

TEST(Trace, CsvQuotesHostileNamesAndRoundTripsExactly) {
  Timeline tl;
  tl.submit(0, Resource::Compute, "k\"er,nel:a", 10.0 / 3.0);
  tl.submit(0, Resource::Compute, "plain", 1.0);
  std::ostringstream os;
  gpusim::write_trace_csv(tl, os);
  const std::string csv = os.str();
  // Embedded quotes double, the field is quoted; plain names are not.
  EXPECT_NE(csv.find("\"k\"\"er,nel:a\""), std::string::npos) << csv;
  EXPECT_NE(csv.find("\nplain,"), std::string::npos) << csv;
  // Times carry enough digits that strtod gives back the exact double.
  const auto pos = csv.find("3.3333333333333335");
  ASSERT_NE(pos, std::string::npos) << csv;
  EXPECT_EQ(std::strtod(csv.c_str() + pos, nullptr), 10.0 / 3.0);
}

TEST(Trace, CsvMetaHeaderLabelsTheTrace) {
  Timeline tl;
  tl.submit(0, Resource::Compute, "k", 1.0);
  std::ostringstream os;
  gpusim::write_trace_csv(tl, os, {"reddit body", "tgcn", "pipad"});
  const std::string csv = os.str();
  EXPECT_EQ(csv.rfind("# pipad-trace v2\n", 0), 0u) << csv;
  // Whitespace in labels would break the space-separated meta comment.
  EXPECT_NE(csv.find("# dataset=reddit_body model=tgcn method=pipad\n"),
            std::string::npos)
      << csv;
}

// Out of line: GCC 12's -Wrestrict analysis trips on short string-literal
// assignment when fully inlined into the test body (PR105329).
[[gnu::noinline]] std::vector<gpusim::OpRecord> single_compute_record(
    double start_us, double end_us) {
  gpusim::OpRecord rec;
  rec.name = "kernel";
  rec.resource = Resource::Compute;
  rec.stream = 0;
  rec.start_us = start_us;
  rec.end_us = end_us;
  return {rec};
}

TEST(Trace, GanttDefaultWindowEndsAtLastRecord) {
  // Record-level overload: to_us = -1 must clamp to the latest end even
  // without a Timeline to ask for the makespan.
  const auto recs = single_compute_record(0.0, 40.0);
  gpusim::GanttOptions opts;
  opts.width = 10;
  const std::string gantt = gpusim::render_gantt(recs, 1, opts);
  EXPECT_NE(gantt.find("compute     ##########"), std::string::npos) << gantt;
  EXPECT_NE(gantt.find("[0, 40) us"), std::string::npos) << gantt;
}

TEST(Trace, GanttWindowPastTheDataRendersIdle) {
  const auto recs = single_compute_record(0.0, 40.0);
  gpusim::GanttOptions opts;
  opts.width = 10;
  opts.from_us = 20.0;
  opts.to_us = 100.0;  // Half busy, then idle beyond the data.
  const std::string gantt = gpusim::render_gantt(recs, 1, opts);
  EXPECT_NE(gantt.find("compute     ###......."), std::string::npos) << gantt;
}

TEST(Trace, OverlapFractionEmptyAndDefaultWindows) {
  Timeline tl;
  tl.submit(0, Resource::Compute, "k", 60.0);
  tl.submit(0, Resource::H2D, "t", 40.0);
  // Degenerate windows must not divide by zero.
  EXPECT_EQ(gpusim::overlap_fraction(tl, Resource::Compute, Resource::H2D,
                                     50.0, 50.0),
            0.0);
  EXPECT_EQ(gpusim::overlap_fraction(tl, Resource::Compute, Resource::H2D,
                                     80.0, 20.0),
            0.0);
  // to_us = -1 resolves to the makespan.
  EXPECT_NEAR(gpusim::overlap_fraction(tl, Resource::Compute, Resource::H2D,
                                       0.0, -1.0),
              0.0, 1e-9);
  EXPECT_NEAR(gpusim::overlap_fraction(tl, Resource::Compute,
                                       Resource::Compute, 0.0, -1.0),
              0.6, 1e-9);
}

}  // namespace
}  // namespace pipad
