// Tensor/ops tests: GEMM in all transpose modes against a naive reference,
// elementwise maps, gate helpers, losses.
#include <gtest/gtest.h>

#include <tuple>

#include "common/compute_pool.hpp"
#include "tensor/ops.hpp"

namespace pipad {
namespace {

Tensor naive_matmul(const Tensor& a, const Tensor& b, bool ta, bool tb) {
  const int m = ta ? a.cols() : a.rows();
  const int k = ta ? a.rows() : a.cols();
  const int n = tb ? b.rows() : b.cols();
  Tensor c(m, n);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      double s = 0.0;
      for (int kk = 0; kk < k; ++kk) {
        const float av = ta ? a.at(kk, i) : a.at(i, kk);
        const float bv = tb ? b.at(j, kk) : b.at(kk, j);
        s += static_cast<double>(av) * bv;
      }
      c.at(i, j) = static_cast<float>(s);
    }
  }
  return c;
}

class GemmModes
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool, bool>> {
};

TEST_P(GemmModes, MatchesNaive) {
  const auto [m, k, n, ta, tb] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 1000 + k * 100 + n));
  const Tensor a = ta ? Tensor::randn(k, m, rng) : Tensor::randn(m, k, rng);
  const Tensor b = tb ? Tensor::randn(n, k, rng) : Tensor::randn(k, n, rng);
  const Tensor c = ops::matmul(a, b, ta, tb);
  EXPECT_LT(ops::max_abs_diff(c, naive_matmul(a, b, ta, tb)), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmModes,
    ::testing::Combine(::testing::Values(1, 5, 33), ::testing::Values(1, 7, 32),
                       ::testing::Values(1, 6, 40), ::testing::Bool(),
                       ::testing::Bool()));

TEST(Gemm, BetaAccumulates) {
  Rng rng(1);
  const Tensor a = Tensor::randn(4, 3, rng);
  const Tensor b = Tensor::randn(3, 5, rng);
  Tensor c = Tensor::full(4, 5, 1.0f);
  ops::gemm(a, b, c, false, false, 1.0f, 1.0f);
  Tensor expect = naive_matmul(a, b, false, false);
  ops::add_inplace(expect, Tensor::full(4, 5, 1.0f));
  EXPECT_LT(ops::max_abs_diff(c, expect), 1e-4f);
}

TEST(Gemm, ShapeMismatchThrows) {
  const Tensor a(4, 3), b(4, 5);
  Tensor c(4, 5);
  EXPECT_THROW(ops::gemm(a, b, c), Error);
}

TEST(Ops, BiasAddAndGradRoundTrip) {
  Rng rng(2);
  Tensor y = Tensor::zeros(6, 4);
  const Tensor bias = Tensor::randn(1, 4, rng);
  ops::add_bias(y, bias);
  for (int r = 0; r < 6; ++r) {
    for (int c = 0; c < 4; ++c) EXPECT_EQ(y.at(r, c), bias.at(0, c));
  }
  const Tensor g = ops::bias_grad(y);
  for (int c = 0; c < 4; ++c) EXPECT_NEAR(g.at(0, c), 6 * bias.at(0, c), 1e-5f);
}

TEST(Ops, ActivationsAndGrads) {
  Rng rng(3);
  const Tensor x = Tensor::randn(5, 5, rng);
  const Tensor r = ops::relu(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(r.data()[i], std::max(0.0f, x.data()[i]));
  }
  const Tensor s = ops::sigmoid(x);
  const Tensor t = ops::tanh(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(s.data()[i], 1.0f / (1.0f + std::exp(-x.data()[i])), 1e-6f);
    EXPECT_NEAR(t.data()[i], std::tanh(x.data()[i]), 1e-6f);
  }
  // Grad identities: d sigmoid = y(1-y), d tanh = 1-y^2.
  const Tensor ones = Tensor::full(5, 5, 1.0f);
  const Tensor ds = ops::sigmoid_grad(ones, s);
  const Tensor dt = ops::tanh_grad(ones, t);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(ds.data()[i], s.data()[i] * (1 - s.data()[i]), 1e-6f);
    EXPECT_NEAR(dt.data()[i], 1 - t.data()[i] * t.data()[i], 1e-6f);
  }
}

TEST(Ops, ConcatSplitRoundTrip) {
  Rng rng(4);
  const Tensor a = Tensor::randn(7, 3, rng);
  const Tensor b = Tensor::randn(7, 5, rng);
  const Tensor ab = ops::concat_cols(a, b);
  EXPECT_EQ(ab.cols(), 8);
  auto [a2, b2] = ops::split_cols(ab, 3);
  EXPECT_EQ(ops::max_abs_diff(a, a2), 0.0f);
  EXPECT_EQ(ops::max_abs_diff(b, b2), 0.0f);
}

TEST(Ops, SliceColsAndScatter) {
  Rng rng(5);
  const Tensor t = Tensor::randn(4, 10, rng);
  const Tensor mid = ops::slice_cols(t, 3, 4);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) EXPECT_EQ(mid.at(r, c), t.at(r, 3 + c));
  }
  Tensor dst = Tensor::zeros(4, 10);
  ops::add_into_cols(dst, mid, 3);
  ops::add_into_cols(dst, mid, 3);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(dst.at(r, 0), 0.0f);
    EXPECT_NEAR(dst.at(r, 5), 2 * t.at(r, 5), 1e-6f);
  }
}

TEST(Ops, MseLossAndGradient) {
  Tensor pred = Tensor::full(2, 2, 3.0f);
  Tensor target = Tensor::full(2, 2, 1.0f);
  Tensor grad;
  const float loss = ops::mse_loss(pred, target, &grad);
  EXPECT_NEAR(loss, 4.0f, 1e-6f);  // (3-1)^2.
  for (std::size_t i = 0; i < grad.size(); ++i) {
    EXPECT_NEAR(grad.data()[i], 2.0f * 2.0f / 4.0f, 1e-6f);
  }
}

TEST(Ops, AllFiniteDetectsNan) {
  Tensor t = Tensor::zeros(2, 2);
  EXPECT_TRUE(ops::all_finite(t));
  t.at(1, 1) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_FALSE(ops::all_finite(t));
}

TEST(Tensor, RandnDeterministicPerSeed) {
  Rng r1(5), r2(5);
  const Tensor a = Tensor::randn(8, 8, r1);
  const Tensor b = Tensor::randn(8, 8, r2);
  EXPECT_EQ(ops::max_abs_diff(a, b), 0.0f);
}

// ---------- Pooled-op determinism across thread counts ----------

/// Run op() under 1-wide and 8-wide ComputePools; every output must be
/// bit-identical (the row/element blocking never depends on the width).
void expect_bitwise_stable(const std::function<Tensor()>& op) {
  ComputePool::instance().configure(1);
  const Tensor serial = op();
  ComputePool::instance().configure(8);
  const Tensor parallel = op();
  ComputePool::instance().configure(0);  // Restore the default for peers.
  ASSERT_EQ(serial.storage().size(), parallel.storage().size());
  for (std::size_t i = 0; i < serial.storage().size(); ++i) {
    ASSERT_EQ(serial.storage()[i], parallel.storage()[i]) << "elem " << i;
  }
}

TEST(PooledDeterminism, GemmBitIdenticalAcrossThreadCounts) {
  Rng rng(31);
  // Big enough that the 8-wide run genuinely fans out (m*k*n >> threshold).
  const Tensor a = Tensor::randn(301, 64, rng);
  const Tensor b = Tensor::randn(64, 47, rng);
  expect_bitwise_stable([&] { return ops::matmul(a, b); });
  expect_bitwise_stable([&] { return ops::matmul(b, a, true, true); });
}

TEST(PooledDeterminism, GemmAccumulateBitIdenticalAcrossThreadCounts) {
  Rng rng(32);
  const Tensor a = Tensor::randn(257, 33, rng);
  const Tensor b = Tensor::randn(33, 65, rng);
  const Tensor seed = Tensor::randn(257, 65, rng);
  expect_bitwise_stable([&] {
    Tensor c = seed;
    ops::gemm(a, b, c, false, false, 0.5f, 1.0f);
    return c;
  });
}

TEST(PooledDeterminism, ElementwiseBitIdenticalAcrossThreadCounts) {
  Rng rng(33);
  const Tensor x = Tensor::randn(173, 211, rng);  // Odd sizes: uneven blocks.
  const Tensor y = Tensor::randn(173, 211, rng);
  expect_bitwise_stable([&] { return ops::mul(x, y); });
  expect_bitwise_stable([&] { return ops::sigmoid(x); });
  expect_bitwise_stable([&] { return ops::tanh(x); });
  expect_bitwise_stable([&] { return ops::relu_grad(y, x); });
  expect_bitwise_stable([&] { return ops::bias_grad(x); });
  expect_bitwise_stable([&] {
    Tensor t = x;
    ops::add_inplace(t, y, 0.25f);
    return t;
  });
}

TEST(PooledDeterminism, ConcatSliceScatterBitIdenticalAcrossThreadCounts) {
  Rng rng(34);
  const Tensor a = Tensor::randn(209, 97, rng);
  const Tensor b = Tensor::randn(209, 31, rng);
  expect_bitwise_stable([&] { return ops::concat_cols(a, b); });
  expect_bitwise_stable([&] { return ops::slice_cols(a, 13, 41); });
  expect_bitwise_stable([&] {
    Tensor dst = a;
    ops::add_into_cols(dst, b, 5);
    return dst;
  });
}

// ---------- Edge shapes through the blocked paths ----------

TEST(PooledEdgeShapes, RowsFewerThanThreadsAndSingleElement) {
  ComputePool::instance().configure(8);
  Rng rng(35);
  // 3 rows, 8 workers: fewer items than lanes.
  const Tensor a = Tensor::randn(3, 4000, rng);
  const Tensor b = Tensor::randn(4000, 2, rng);
  const Tensor c = ops::matmul(a, b);
  EXPECT_EQ(c.rows(), 3);
  for (int i = 0; i < c.rows(); ++i) {
    for (int j = 0; j < c.cols(); ++j) {
      double s = 0.0;
      for (int k = 0; k < 4000; ++k) {
        s += static_cast<double>(a.at(i, k)) * b.at(k, j);
      }
      EXPECT_NEAR(c.at(i, j), s, 1e-2);
    }
  }
  // 1x1 through every elementwise path.
  const Tensor one = Tensor::full(1, 1, -2.0f);
  EXPECT_EQ(ops::relu(one).at(0, 0), 0.0f);
  EXPECT_EQ(ops::mul(one, one).at(0, 0), 4.0f);
  ComputePool::instance().configure(0);
}

TEST(PooledEdgeShapes, ZeroRowTensorsAreNoOps) {
  ComputePool::instance().configure(4);
  Tensor empty(0, 5), empty2(0, 5);
  EXPECT_EQ(ops::add(empty, empty2).size(), 0u);
  EXPECT_EQ(ops::relu(empty).size(), 0u);
  const Tensor cat = ops::concat_cols(empty, empty2);
  EXPECT_EQ(cat.rows(), 0);
  EXPECT_EQ(cat.cols(), 10);
  ComputePool::instance().configure(0);
}

}  // namespace
}  // namespace pipad
