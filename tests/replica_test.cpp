// replica/ tests: the bitwise-determinism wall around replicated
// data-parallel training (losses and params identical for ANY
// --replicas x --threads combination), the per-replica bounded infeed
// queue (backpressure, out-of-order waits, teardown drain, sticky
// failures — the same wall tuner_test builds around HostStream), and the
// all-reduce unit surface (canonical reduction numerics, interconnect
// timing formulas).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "gpusim/gpu.hpp"
#include "graph/generator.hpp"
#include "host/host_lane.hpp"
#include "models/training.hpp"
#include "pipad/pipad_trainer.hpp"
#include "replica/allreduce.hpp"
#include "replica/infeed.hpp"
#include "replica/replica_trainer.hpp"
#include "test_util.hpp"

namespace pipad {
namespace {

using gpusim::Resource;
using testutil::flat_params;
using testutil::small_cfg;
using testutil::tiny_config;

struct ReplicaRun {
  models::TrainResult result;
  std::vector<float> params;  ///< Replica 0's flat params+grads.
};

ReplicaRun train_replicated(const graph::DTDG& g,
                            const models::TrainConfig& cfg, int threads,
                            int replicas,
                            const std::string& allreduce = "ring") {
  gpusim::Gpu gpu;
  runtime::PipadOptions opts;
  opts.host_threads = threads;
  opts.replicas = replicas;
  opts.allreduce = allreduce;
  replica::ReplicaTrainer trainer(gpu, g, cfg, opts);
  ReplicaRun run;
  run.result = trainer.train();
  run.params = flat_params(trainer.model());
  return run;
}

// ---------- The determinism wall ----------

TEST(ReplicaDeterminism, BitwiseLossAndParamEqualityAcrossReplicasAndThreads) {
  const auto g = graph::generate(tiny_config(48, 8, 3));
  const auto cfg = small_cfg(models::ModelType::TGcn);

  const ReplicaRun ref = train_replicated(g, cfg, /*threads=*/1,
                                          /*replicas=*/1);
  ASSERT_FALSE(ref.result.frame_loss.empty());
  ASSERT_FALSE(ref.params.empty());

  for (const int replicas : {1, 2, 4}) {
    for (const int threads : {1, 8}) {
      SCOPED_TRACE("replicas=" + std::to_string(replicas) +
                   " threads=" + std::to_string(threads));
      const ReplicaRun run = train_replicated(g, cfg, threads, replicas);
      ASSERT_EQ(run.result.frame_loss.size(), ref.result.frame_loss.size());
      // EXPECT_EQ on floats is exact equality; the memcmp below holds the
      // params (values AND grads) to bit identity.
      for (std::size_t i = 0; i < ref.result.frame_loss.size(); ++i) {
        EXPECT_EQ(run.result.frame_loss[i], ref.result.frame_loss[i]) << i;
      }
      ASSERT_EQ(run.params.size(), ref.params.size());
      EXPECT_EQ(std::memcmp(run.params.data(), ref.params.data(),
                            ref.params.size() * sizeof(float)),
                0);
    }
  }
}

TEST(ReplicaDeterminism, EveryModelMatchesAcrossReplicaCounts) {
  const auto g = graph::generate(tiny_config(40, 8, 3));
  for (const auto model :
       {models::ModelType::TGcn, models::ModelType::EvolveGcn,
        models::ModelType::MpnnLstm}) {
    SCOPED_TRACE(static_cast<int>(model));
    const auto cfg = small_cfg(model);
    const ReplicaRun one = train_replicated(g, cfg, 1, 1);
    const ReplicaRun four = train_replicated(g, cfg, 8, 4);
    ASSERT_EQ(one.result.frame_loss.size(), four.result.frame_loss.size());
    for (std::size_t i = 0; i < one.result.frame_loss.size(); ++i) {
      EXPECT_EQ(one.result.frame_loss[i], four.result.frame_loss[i]) << i;
    }
    ASSERT_EQ(one.params.size(), four.params.size());
    EXPECT_EQ(std::memcmp(one.params.data(), four.params.data(),
                          one.params.size() * sizeof(float)),
              0);
  }
}

TEST(ReplicaDeterminism, RingAndTreeProduceIdenticalNumerics) {
  const auto g = graph::generate(tiny_config(40, 8, 3));
  const auto cfg = small_cfg(models::ModelType::TGcn);
  const ReplicaRun ring = train_replicated(g, cfg, 2, 2, "ring");
  const ReplicaRun tree = train_replicated(g, cfg, 2, 2, "tree");
  ASSERT_EQ(ring.result.frame_loss.size(), tree.result.frame_loss.size());
  for (std::size_t i = 0; i < ring.result.frame_loss.size(); ++i) {
    EXPECT_EQ(ring.result.frame_loss[i], tree.result.frame_loss[i]) << i;
  }
  EXPECT_EQ(std::memcmp(ring.params.data(), tree.params.data(),
                        ring.params.size() * sizeof(float)),
            0);
  // The algorithm is a timing model only — and for K=2 the timings are
  // provably distinct (ring moves half the payload per step, tree all of
  // it), so equal allreduce_us would mean the knob is dead.
  EXPECT_GT(ring.result.allreduce_us, 0.0);
  EXPECT_GT(tree.result.allreduce_us, 0.0);
  EXPECT_NE(ring.result.allreduce_us, tree.result.allreduce_us);
}

// ---------- TrainResult replica fields + Link lane charging ----------

TEST(ReplicaResult, PopulatesReplicaFieldsAndLinkOps) {
  const auto g = graph::generate(tiny_config(40, 8, 3));
  const auto cfg = small_cfg(models::ModelType::TGcn);

  gpusim::Gpu gpu;
  runtime::PipadOptions opts;
  opts.host_threads = 2;
  opts.replicas = 3;
  replica::ReplicaTrainer trainer(gpu, g, cfg, opts);
  const auto r = trainer.train();

  EXPECT_EQ(r.replicas, 3);
  EXPECT_GT(r.allreduce_us, 0.0);
  ASSERT_EQ(r.replica_total_us.size(), 3u);
  double max_total = 0.0;
  for (const double t : r.replica_total_us) {
    EXPECT_GT(t, 0.0);
    if (t > max_total) max_total = t;
  }
  // The reported makespan is the slowest replica's.
  EXPECT_DOUBLE_EQ(r.total_us, max_total);

  // Every replica's timeline carries "comm:allreduce:<algo>" ops on the
  // Link lane; replica 0 runs on the caller's Gpu.
  EXPECT_EQ(&trainer.replica_timeline(0), &gpu.timeline());
  for (int k = 0; k < 3; ++k) {
    SCOPED_TRACE(k);
    int link_ops = 0;
    for (const auto& rec : trainer.replica_timeline(k).records()) {
      if (rec.resource != Resource::Link) continue;
      ++link_ops;
      EXPECT_EQ(rec.name.rfind("comm:allreduce:ring", 0), 0u) << rec.name;
    }
    EXPECT_GT(link_ops, 0);
  }
}

TEST(ReplicaResult, SingleReplicaNeverTouchesTheLink) {
  const auto g = graph::generate(tiny_config(40, 8, 3));
  gpusim::Gpu gpu;
  runtime::PipadOptions opts;
  opts.replicas = 1;
  replica::ReplicaTrainer trainer(gpu, g, small_cfg(models::ModelType::TGcn),
                                  opts);
  const auto r = trainer.train();
  EXPECT_EQ(r.replicas, 1);
  EXPECT_EQ(r.allreduce_us, 0.0);
  ASSERT_EQ(r.replica_total_us.size(), 1u);
  for (const auto& rec : gpu.timeline().records()) {
    EXPECT_NE(rec.resource, Resource::Link) << rec.name;
  }
}

TEST(ReplicaTrainerCtor, RejectsTheMeasuredTuner) {
  const auto g = graph::generate(tiny_config(40, 8, 3));
  gpusim::Gpu gpu;
  runtime::PipadOptions opts;
  opts.replicas = 2;
  opts.tuner = runtime::TunerMode::Measured;
  EXPECT_THROW(
      {
        replica::ReplicaTrainer t(gpu, g, small_cfg(models::ModelType::TGcn),
                                  opts);
      },
      Error);
}

TEST(ReplicaTrainerCtor, RejectsUnknownAllreduceAlgorithms) {
  const auto g = graph::generate(tiny_config(40, 8, 3));
  gpusim::Gpu gpu;
  runtime::PipadOptions opts;
  opts.replicas = 2;
  opts.allreduce = "butterfly";
  EXPECT_THROW(
      {
        replica::ReplicaTrainer t(gpu, g, small_cfg(models::ModelType::TGcn),
                                  opts);
      },
      Error);
}

// ---------- InfeedQueue: the HostStream wall, on the replica seam ----------

TEST(InfeedQueue, StagesEveryShardAndChargesTheLanes) {
  gpusim::Gpu gpu;
  host::HostLane lane(gpu, 2);
  std::vector<int> out(8, 0);
  replica::InfeedQueue q(lane, "r0", 8, [&](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    out[i] = static_cast<int>(i) + 1;
  });
  EXPECT_EQ(q.size(), 8u);
  EXPECT_EQ(q.window(), 2u);  // window=0 picks 2.
  for (std::size_t j = 0; j < 8; ++j) EXPECT_GT(q.wait(j), 0.0);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], i + 1);
  EXPECT_EQ(q.retired(), 8u);
  // Staging cost lands on the worker lanes under the infeed name.
  int infeed_ops = 0;
  for (const auto& rec : gpu.timeline().records()) {
    ASSERT_EQ(rec.resource, Resource::CpuWorker);
    EXPECT_EQ(rec.name.rfind("prep:infeed:r0", 0), 0u) << rec.name;
    ++infeed_ops;
  }
  EXPECT_EQ(infeed_ops, 8);
}

TEST(InfeedQueue, WindowBoundsInFlightShards) {
  gpusim::Gpu gpu;
  host::HostLane lane(gpu, 2);
  constexpr std::size_t kWindow = 3;
  std::atomic<int> started{0};
  replica::InfeedQueue q(
      lane, "r0", 12,
      [&](std::size_t) {
        started.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      },
      kWindow);
  for (std::size_t j = 0; j < 12; ++j) {
    q.wait(j);
    // Backpressure: the producer never runs ahead of the consumer by more
    // than the in-flight window, so a long timeline cannot pile up staged
    // feature copies.
    EXPECT_LE(static_cast<std::size_t>(started.load()),
              q.retired() + kWindow);
  }
  EXPECT_EQ(started.load(), 12);
  EXPECT_EQ(q.retired(), 12u);
}

TEST(InfeedQueue, OutOfOrderWaitStillDrains) {
  gpusim::Gpu gpu;
  host::HostLane lane(gpu, 2);
  std::atomic<int> ran{0};
  replica::InfeedQueue q(
      lane, "r0", 6, [&](std::size_t) { ran.fetch_add(1); }, 2);
  // Waiting on the last shard first forces the whole window-refill path.
  EXPECT_GT(q.wait(5), 0.0);
  EXPECT_EQ(ran.load(), 6);
  for (std::size_t j = 0; j < 6; ++j) EXPECT_GT(q.wait(j), 0.0);
}

TEST(InfeedQueue, DestructorDrainsUnconsumedShards) {
  gpusim::Gpu gpu;
  host::HostLane lane(gpu, 2);
  std::atomic<int> ran{0};
  {
    replica::InfeedQueue q(
        lane, "r0", 10, [&](std::size_t) { ran.fetch_add(1); }, 4);
    q.wait(0);
  }  // Dtor must retire the rest; jobs reference `ran` on this frame.
  EXPECT_EQ(ran.load(), 10);
}

TEST(InfeedQueue, RethrowsTheFirstStagingFailureFromWait) {
  gpusim::Gpu gpu;
  host::HostLane lane(gpu, 2);
  std::atomic<int> ran{0};
  replica::InfeedQueue q(
      lane, "r0", 6,
      [&](std::size_t i) {
        ran.fetch_add(1);
        if (i == 2) throw std::runtime_error("shard failed");
      },
      2);
  EXPECT_THROW(
      {
        for (std::size_t j = 0; j < 6; ++j) q.wait(j);
      },
      std::runtime_error);
  EXPECT_EQ(ran.load(), 6);  // The failure drained, not wedged, the queue.
  // Sticky: a failed shard can never be consumed as if it succeeded.
  EXPECT_THROW(q.wait(2), std::runtime_error);
  EXPECT_THROW(q.wait(5), std::runtime_error);
}

// ---------- All-reduce unit wall ----------

TEST(AllReduce, ParseAcceptsExactlyRingAndTree) {
  replica::AllReduceAlgo a;
  ASSERT_TRUE(replica::parse_allreduce("ring", a));
  EXPECT_EQ(a, replica::AllReduceAlgo::Ring);
  ASSERT_TRUE(replica::parse_allreduce("tree", a));
  EXPECT_EQ(a, replica::AllReduceAlgo::Tree);
  EXPECT_FALSE(replica::parse_allreduce("Ring", a));
  EXPECT_FALSE(replica::parse_allreduce("butterfly", a));
  EXPECT_FALSE(replica::parse_allreduce("", a));
  EXPECT_STREQ(replica::allreduce_name(replica::AllReduceAlgo::Ring), "ring");
  EXPECT_STREQ(replica::allreduce_name(replica::AllReduceAlgo::Tree), "tree");
}

TEST(AllReduce, ReductionIsBitExactAcrossAlgorithms) {
  // Adversarial float orderings: catastrophic cancellation and values whose
  // sum depends on association order. Any algorithm-specific (chunked,
  // rotated) arithmetic would change bits here.
  const std::vector<std::vector<float>> parts = {
      {1e8f, 1.0f, -1.0f, 0.25f},
      {1.0f, -1e8f, 3.0f, 0.5f},
      {-1e8f, 1e-3f, 7.0f, 0.125f},
      {1.0f, 1e8f, -9.0f, -0.875f},
  };
  // The serial reference: index-order sum, one accumulator per element.
  std::vector<float> want(parts[0].size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    float acc = parts[0][i];
    for (std::size_t j = 1; j < parts.size(); ++j) acc += parts[j][i];
    want[i] = acc / static_cast<float>(parts.size());
  }
  const auto ring =
      replica::reduce_mean(parts, replica::AllReduceAlgo::Ring);
  const auto tree =
      replica::reduce_mean(parts, replica::AllReduceAlgo::Tree);
  ASSERT_EQ(ring.size(), want.size());
  ASSERT_EQ(tree.size(), want.size());
  EXPECT_EQ(std::memcmp(ring.data(), want.data(),
                        want.size() * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(tree.data(), want.data(),
                        want.size() * sizeof(float)),
            0);
}

TEST(AllReduce, StepCountsMatchTheTimingModel) {
  using replica::AllReduceAlgo;
  // A single replica never touches the link.
  EXPECT_EQ(replica::allreduce_steps(AllReduceAlgo::Ring, 1), 0);
  EXPECT_EQ(replica::allreduce_steps(AllReduceAlgo::Tree, 1), 0);
  // Ring: 2(K-1) (reduce-scatter + all-gather).
  EXPECT_EQ(replica::allreduce_steps(AllReduceAlgo::Ring, 2), 2);
  EXPECT_EQ(replica::allreduce_steps(AllReduceAlgo::Ring, 4), 6);
  EXPECT_EQ(replica::allreduce_steps(AllReduceAlgo::Ring, 8), 14);
  // Tree: 2*ceil(log2 K) (reduce-to-root + broadcast).
  EXPECT_EQ(replica::allreduce_steps(AllReduceAlgo::Tree, 2), 2);
  EXPECT_EQ(replica::allreduce_steps(AllReduceAlgo::Tree, 3), 4);
  EXPECT_EQ(replica::allreduce_steps(AllReduceAlgo::Tree, 4), 4);
  EXPECT_EQ(replica::allreduce_steps(AllReduceAlgo::Tree, 5), 6);
  EXPECT_EQ(replica::allreduce_steps(AllReduceAlgo::Tree, 8), 6);
}

TEST(AllReduce, StepBytesAndTimesFollowTheLinkModel) {
  using replica::AllReduceAlgo;
  replica::LinkModel link;
  link.latency_us = 5.0;
  link.gb_per_s = 50.0;  // 50,000 bytes per microsecond.
  // Ring moves ceil(bytes/K) per step; tree the full payload.
  EXPECT_EQ(replica::allreduce_step_bytes(AllReduceAlgo::Ring, 4, 1000001u),
            250001u);
  EXPECT_EQ(replica::allreduce_step_bytes(AllReduceAlgo::Tree, 4, 1000001u),
            1000001u);
  EXPECT_DOUBLE_EQ(
      replica::allreduce_step_us(AllReduceAlgo::Tree, 4, 1000000u, link),
      5.0 + 1000000.0 / 50000.0);
  EXPECT_DOUBLE_EQ(
      replica::allreduce_step_us(AllReduceAlgo::Ring, 4, 1000000u, link),
      5.0 + 250000.0 / 50000.0);
  EXPECT_DOUBLE_EQ(
      replica::allreduce_total_us(AllReduceAlgo::Ring, 4, 1000000u, link),
      6.0 * (5.0 + 250000.0 / 50000.0));
  EXPECT_DOUBLE_EQ(
      replica::allreduce_total_us(AllReduceAlgo::Tree, 4, 1000000u, link),
      4.0 * (5.0 + 1000000.0 / 50000.0));
  // K=1: zero steps, zero total.
  EXPECT_DOUBLE_EQ(
      replica::allreduce_total_us(AllReduceAlgo::Ring, 1, 1000000u, link),
      0.0);
}

}  // namespace
}  // namespace pipad
