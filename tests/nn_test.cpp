// NN layer tests: numerical gradient checks for every module's manual
// backward, plus optimizer behaviour.
#include <gtest/gtest.h>

#include <functional>

#include "nn/gru.hpp"
#include "nn/linear.hpp"
#include "nn/lstm.hpp"
#include "nn/optim.hpp"
#include "tensor/ops.hpp"

namespace pipad {
namespace {

/// Central-difference gradient of scalar_fn wrt one element of t.
float numeric_grad(Tensor& t, int r, int c,
                   const std::function<float()>& scalar_fn,
                   float eps = 1e-3f) {
  const float orig = t.at(r, c);
  t.at(r, c) = orig + eps;
  const float hi = scalar_fn();
  t.at(r, c) = orig - eps;
  const float lo = scalar_fn();
  t.at(r, c) = orig;
  return (hi - lo) / (2.0f * eps);
}

/// Sum-of-outputs loss makes d(loss)/d(out) all-ones.
Tensor ones_like(const Tensor& t) {
  return Tensor::full(t.rows(), t.cols(), 1.0f);
}

TEST(Linear, ForwardMatchesManualMath) {
  Rng rng(1);
  nn::Linear lin(3, 2, rng);
  const Tensor x = Tensor::randn(4, 3, rng);
  const Tensor y = lin.forward(x, nullptr, "t");
  Tensor expect = ops::matmul(x, lin.weight().value);
  ops::add_bias(expect, lin.bias().value);
  EXPECT_LT(ops::max_abs_diff(y, expect), 1e-6f);
}

TEST(Linear, GradientCheck) {
  Rng rng(2);
  nn::Linear lin(3, 2, rng);
  Tensor x = Tensor::randn(5, 3, rng);
  auto loss = [&] { return ops::sum(lin.forward(x, nullptr, "t")); };

  const Tensor y = lin.forward(x, nullptr, "t");
  nn::zero_grads(lin.params());
  const Tensor dx = lin.backward(x, ones_like(y), nullptr, "t");

  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_NEAR(lin.weight().grad.at(r, c),
                  numeric_grad(lin.weight().value, r, c, loss), 2e-2f);
      EXPECT_NEAR(dx.at(r, c), numeric_grad(x, r, c, loss), 2e-2f);
    }
  }
  EXPECT_NEAR(lin.bias().grad.at(0, 0),
              numeric_grad(lin.bias().value, 0, 0, loss), 2e-2f);
}

TEST(LstmCell, GradientCheckAllPaths) {
  Rng rng(3);
  nn::LSTMCell cell(3, 4, rng);
  Tensor x = Tensor::randn(2, 3, rng);
  Tensor h0 = Tensor::randn(2, 4, rng, 0.5f);
  Tensor c0 = Tensor::randn(2, 4, rng, 0.5f);
  auto loss = [&] {
    nn::LSTMCell::Cache cache;
    auto [h, c] = cell.forward(x, h0, c0, cache, nullptr, "t");
    return ops::sum(h) + 0.5f * ops::sum(c);
  };

  nn::LSTMCell::Cache cache;
  auto [h, c] = cell.forward(x, h0, c0, cache, nullptr, "t");
  nn::zero_grads(cell.params());
  auto [dx, dh0, dc0] = cell.backward(
      cache, ones_like(h), Tensor::full(2, 4, 0.5f), nullptr, "t");

  // Inputs.
  for (int r = 0; r < 2; ++r) {
    for (int cc = 0; cc < 3; ++cc) {
      EXPECT_NEAR(dx.at(r, cc), numeric_grad(x, r, cc, loss), 2e-2f)
          << "dx(" << r << "," << cc << ")";
    }
    for (int cc = 0; cc < 4; ++cc) {
      EXPECT_NEAR(dh0.at(r, cc), numeric_grad(h0, r, cc, loss), 2e-2f);
      EXPECT_NEAR(dc0.at(r, cc), numeric_grad(c0, r, cc, loss), 2e-2f);
    }
  }
  // A sample of weight entries.
  auto& w = cell.weight();
  for (int r = 0; r < 3; ++r) {
    for (int cc = 0; cc < 4; ++cc) {
      EXPECT_NEAR(w.grad.at(r, cc), numeric_grad(w.value, r, cc, loss),
                  3e-2f)
          << "dW(" << r << "," << cc << ")";
    }
  }
}

TEST(LstmSequence, BpttGradientCheck) {
  Rng rng(4);
  nn::LSTMCell cell(2, 3, rng);
  std::vector<Tensor> xs;
  for (int t = 0; t < 4; ++t) xs.push_back(Tensor::randn(2, 2, rng));
  std::vector<const Tensor*> xp;
  for (auto& x : xs) xp.push_back(&x);

  auto loss = [&] {
    nn::LSTMSequence seq(&cell);
    auto hs = seq.forward(xp, nullptr, "t");
    float s = 0.0f;
    for (auto& h : hs) s += ops::sum(h);
    return s;
  };

  nn::LSTMSequence seq(&cell);
  auto hs = seq.forward(xp, nullptr, "t");
  nn::zero_grads(cell.params());
  std::vector<Tensor> d_hs;
  for (auto& h : hs) d_hs.push_back(ones_like(h));
  auto dxs = seq.backward(d_hs, nullptr, "t");

  for (int t = 0; t < 4; ++t) {
    for (int r = 0; r < 2; ++r) {
      for (int c = 0; c < 2; ++c) {
        EXPECT_NEAR(dxs[t].at(r, c), numeric_grad(xs[t], r, c, loss), 3e-2f)
            << "t=" << t;
      }
    }
  }
  auto& w = cell.weight();
  EXPECT_NEAR(w.grad.at(0, 0), numeric_grad(w.value, 0, 0, loss), 5e-2f);
  EXPECT_NEAR(w.grad.at(4, 7), numeric_grad(w.value, 4, 7, loss), 5e-2f);
}

TEST(GruCell, GradientCheckAllPaths) {
  Rng rng(5);
  nn::GRUCell cell(3, 4, rng);
  Tensor x = Tensor::randn(2, 3, rng);
  Tensor h0 = Tensor::randn(2, 4, rng, 0.5f);
  auto loss = [&] {
    nn::GRUCell::Cache cache;
    return ops::sum(cell.forward(x, h0, cache, nullptr, "t"));
  };

  nn::GRUCell::Cache cache;
  Tensor h = cell.forward(x, h0, cache, nullptr, "t");
  nn::zero_grads(cell.params());
  auto [dx, dh0] = cell.backward(cache, ones_like(h), nullptr, "t");

  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_NEAR(dx.at(r, c), numeric_grad(x, r, c, loss), 2e-2f);
    }
    for (int c = 0; c < 4; ++c) {
      EXPECT_NEAR(dh0.at(r, c), numeric_grad(h0, r, c, loss), 2e-2f);
    }
  }
  auto params = cell.params();
  for (auto* p : params) {
    EXPECT_NEAR(p->grad.at(0, 0), numeric_grad(p->value, 0, 0, loss), 3e-2f);
  }
}

TEST(GruCell, HiddenStateStaysBounded) {
  // GRU output is a convex combination of tanh output and previous state;
  // repeated application from a bounded start must remain bounded.
  Rng rng(6);
  nn::GRUCell cell(2, 3, rng);
  Tensor h = Tensor::zeros(4, 3);
  const Tensor x = Tensor::randn(4, 2, rng);
  for (int i = 0; i < 50; ++i) {
    nn::GRUCell::Cache cache;
    h = cell.forward(x, h, cache, nullptr, "t");
  }
  for (std::size_t i = 0; i < h.size(); ++i) {
    EXPECT_LE(std::abs(h.data()[i]), 1.0f + 1e-5f);
  }
}

TEST(Optim, SgdDescendsQuadratic) {
  nn::Parameter p(Tensor::full(1, 1, 5.0f));
  nn::Sgd sgd(0.1f);
  for (int i = 0; i < 100; ++i) {
    p.grad.at(0, 0) = 2.0f * p.value.at(0, 0);  // d/dx x^2.
    sgd.step({&p});
  }
  EXPECT_NEAR(p.value.at(0, 0), 0.0f, 1e-3f);
}

TEST(Optim, AdamDescendsQuadratic) {
  nn::Parameter p(Tensor::full(1, 1, 5.0f));
  nn::Adam adam(0.1f);
  for (int i = 0; i < 500; ++i) {
    p.grad.at(0, 0) = 2.0f * p.value.at(0, 0);
    adam.step({&p});
  }
  EXPECT_NEAR(p.value.at(0, 0), 0.0f, 1e-2f);
}

TEST(Optim, AdamRejectsChangedParamList) {
  nn::Parameter a(Tensor::zeros(1, 1)), b(Tensor::zeros(1, 1));
  nn::Adam adam;
  adam.step({&a});
  EXPECT_THROW(adam.step({&a, &b}), Error);
}

}  // namespace
}  // namespace pipad
