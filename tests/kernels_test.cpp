// Aggregation / update kernel tests: numerics against the reference SpMM,
// plus the analytic memory-model properties the paper's Fig. 5 and §3.2
// depend on.
#include <gtest/gtest.h>

#include "common/compute_pool.hpp"
#include "graph/generator.hpp"
#include "kernels/aggregate.hpp"
#include "kernels/stats_builders.hpp"
#include "kernels/update.hpp"
#include "sliced/partition.hpp"
#include "tensor/ops.hpp"

namespace pipad {
namespace {

using graph::CSR;
using kernels::KernelStats;

CSR random_csr(int n, int edges, Rng& rng) {
  std::vector<graph::Edge> es;
  es.reserve(edges);
  for (int i = 0; i < edges; ++i) {
    es.push_back({static_cast<int>(rng.next_below(n)),
                  static_cast<int>(rng.next_below(n))});
  }
  return graph::csr_from_edges(n, n, std::move(es));
}

// ---------- Numerics: every kernel must match the reference ----------

class AggKernelDims : public ::testing::TestWithParam<int> {};

TEST_P(AggKernelDims, CooMatchesReference) {
  Rng rng(1);
  const int f = GetParam();
  const CSR a = random_csr(64, 400, rng);
  const Tensor x = Tensor::randn(64, f, rng);
  Tensor ref(64, f), got(64, f);
  kernels::ref_spmm(a, x, ref);
  kernels::agg_coo(graph::coo_from_csr(a), x, got);
  EXPECT_LT(ops::max_abs_diff(ref, got), 1e-5f);
}

TEST_P(AggKernelDims, CsrMatchesReference) {
  Rng rng(2);
  const int f = GetParam();
  const CSR a = random_csr(64, 400, rng);
  const Tensor x = Tensor::randn(64, f, rng);
  Tensor ref(64, f), got(64, f);
  kernels::ref_spmm(a, x, ref);
  kernels::agg_csr(a, x, got);
  EXPECT_LT(ops::max_abs_diff(ref, got), 1e-5f);
}

TEST_P(AggKernelDims, GespmmMatchesReference) {
  Rng rng(3);
  const int f = GetParam();
  const CSR a = random_csr(64, 400, rng);
  const Tensor x = Tensor::randn(64, f, rng);
  Tensor ref(64, f), got(64, f);
  kernels::ref_spmm(a, x, ref);
  kernels::agg_gespmm(a, x, got);
  EXPECT_LT(ops::max_abs_diff(ref, got), 1e-5f);
}

TEST_P(AggKernelDims, SlicedMatchesReference) {
  Rng rng(4);
  const int f = GetParam();
  const CSR a = random_csr(64, 400, rng);
  const Tensor x = Tensor::randn(64, f, rng);
  Tensor ref(64, f), got(64, f);
  kernels::ref_spmm(a, x, ref);
  const auto s = sliced::slice(a, 8);
  kernels::agg_sliced(s, x, got);
  EXPECT_LT(ops::max_abs_diff(ref, got), 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(FeatureDims, AggKernelDims,
                         ::testing::Values(1, 2, 4, 7, 8, 16, 31, 32, 33, 64,
                                           128, 200));

TEST(AggKernels, AccumulateAddsIntoOutput) {
  Rng rng(5);
  const CSR a = random_csr(32, 128, rng);
  const Tensor x = Tensor::randn(32, 4, rng);
  Tensor once(32, 4), twice(32, 4);
  kernels::ref_spmm(a, x, once);
  kernels::agg_coo(graph::coo_from_csr(a), x, twice, /*accumulate=*/false);
  kernels::agg_coo(graph::coo_from_csr(a), x, twice, /*accumulate=*/true);
  ops::scale_inplace(once, 2.0f);
  EXPECT_LT(ops::max_abs_diff(once, twice), 1e-5f);
}

TEST(AggKernels, EmptyGraphProducesZeros) {
  const CSR a{8, 8, std::vector<int>(9, 0), {}};
  Rng rng(6);
  const Tensor x = Tensor::randn(8, 3, rng);
  Tensor out = Tensor::full(8, 3, 42.0f);
  kernels::agg_gespmm(a, x, out);
  EXPECT_EQ(ops::sum(out), 0.0f);
}

// ---------- Normalization ----------

TEST(Normalize, MeanOverClosedNeighborhood) {
  Rng rng(7);
  const CSR a = random_csr(40, 160, rng);
  const Tensor x = Tensor::randn(40, 5, rng);
  Tensor agg(40, 5), h(40, 5);
  kernels::ref_spmm(a, x, agg);
  kernels::gcn_normalize(kernels::degrees(a), x, agg, h);
  for (int v = 0; v < 40; ++v) {
    const int d = a.degree(v);
    for (int c = 0; c < 5; ++c) {
      EXPECT_NEAR(h.at(v, c), (agg.at(v, c) + x.at(v, c)) / (d + 1), 1e-5f);
    }
  }
}

TEST(Normalize, BackwardScalesByInverseDegree) {
  Rng rng(8);
  const CSR a = random_csr(16, 48, rng);
  const Tensor g = Tensor::randn(16, 3, rng);
  Tensor d_agg(16, 3), d_x(16, 3);
  kernels::gcn_normalize_backward(kernels::degrees(a), g, d_agg, d_x);
  for (int v = 0; v < 16; ++v) {
    for (int c = 0; c < 3; ++c) {
      const float expect = g.at(v, c) / (a.degree(v) + 1);
      EXPECT_NEAR(d_agg.at(v, c), expect, 1e-6f);
      EXPECT_NEAR(d_x.at(v, c), expect, 1e-6f);
    }
  }
}

TEST(Normalize, CoalescedMatchesPerSnapshot) {
  Rng rng(9);
  const CSR a0 = random_csr(24, 96, rng);
  const CSR a1 = random_csr(24, 96, rng);
  const Tensor x0 = Tensor::randn(24, 4, rng);
  const Tensor x1 = Tensor::randn(24, 4, rng);
  Tensor agg0(24, 4), agg1(24, 4);
  kernels::ref_spmm(a0, x0, agg0);
  kernels::ref_spmm(a1, x1, agg1);

  // Per-snapshot path.
  Tensor h0(24, 4), h1(24, 4);
  const auto d0 = kernels::degrees(a0);
  const auto d1 = kernels::degrees(a1);
  kernels::gcn_normalize(d0, x0, agg0, h0);
  kernels::gcn_normalize(d1, x1, agg1, h1);

  // Coalesced path.
  const Tensor xc = sliced::coalesce_features({&x0, &x1});
  const Tensor ac = sliced::coalesce_features({&agg0, &agg1});
  Tensor hc(24, 8);
  kernels::gcn_normalize_coalesced({&d0, &d1}, xc, ac, hc);
  const auto split = sliced::split_coalesced(hc, 2);
  EXPECT_LT(ops::max_abs_diff(split[0], h0), 1e-6f);
  EXPECT_LT(ops::max_abs_diff(split[1], h1), 1e-6f);
}

// ---------- Parallel aggregation over an overlap decomposition ----------

TEST(ParallelAgg, OverlapPlusExclusiveEqualsFullAggregation) {
  Rng rng(10);
  graph::DatasetConfig cfg;
  cfg.name = "t";
  cfg.num_nodes = 80;
  cfg.raw_events = 900;
  cfg.num_snapshots = 6;
  cfg.feat_dim = 3;
  cfg.edge_life = 4.0;
  const auto g = graph::generate(cfg);

  const auto part = sliced::build_partition(g, 1, 4);
  std::vector<const Tensor*> feats;
  for (int i = 0; i < 4; ++i) feats.push_back(&g.snapshots[1 + i].features);
  const Tensor coal = sliced::coalesce_features(feats);

  Tensor agg(80, 12);
  kernels::agg_sliced(part.overlap, coal, agg);
  for (int i = 0; i < 4; ++i) {
    Tensor e(80, 3);
    kernels::agg_sliced(part.exclusive[i], *feats[i], e);
    ops::add_into_cols(agg, e, i * 3);
  }
  const auto split = sliced::split_coalesced(agg, 4);
  for (int i = 0; i < 4; ++i) {
    Tensor ref(80, 3);
    kernels::ref_spmm(g.snapshots[1 + i].adj, *feats[i], ref);
    EXPECT_LT(ops::max_abs_diff(split[i], ref), 1e-4f) << "snapshot " << i;
  }
}

TEST(ParallelAgg, CombinedDegreesMatchSnapshotDegrees) {
  Rng rng(11);
  graph::DatasetConfig cfg;
  cfg.name = "t";
  cfg.num_nodes = 50;
  cfg.raw_events = 600;
  cfg.num_snapshots = 4;
  cfg.feat_dim = 2;
  cfg.edge_life = 3.0;
  const auto g = graph::generate(cfg);
  const auto part = sliced::build_partition(g, 0, 3);
  for (int i = 0; i < 3; ++i) {
    const auto combined =
        kernels::combined_degrees(part.overlap, part.exclusive[i]);
    EXPECT_EQ(combined, kernels::degrees(g.snapshots[i].adj));
  }
}

// ---------- Edge-weighted aggregation ----------

/// Deterministic non-uniform weights, a pure function of (src, dst, salt).
std::vector<float> test_weights(const CSR& a, int salt) {
  std::vector<float> w(a.nnz());
  for (int r = 0; r < a.rows; ++r) {
    for (int i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
      w[i] = 0.25f +
             0.125f * static_cast<float>((a.col_idx[i] * 31 + r * 7 + salt) %
                                         16);
    }
  }
  return w;
}

TEST(WeightedAgg, RefSpmmAppliesEdgeWeights) {
  // dst 1 <- src 0 (w=2), dst 2 <- src 1 (w=0.5) and src 2 (w=3).
  const CSR a = graph::csr_from_edges(3, 3, {{0, 1}, {1, 2}, {2, 2}});
  ASSERT_EQ(a.col_idx, (std::vector<int>{0, 1, 2}));
  const std::vector<float> w{2.0f, 0.5f, 3.0f};
  Tensor x(3, 1);
  x.at(0, 0) = 1.0f;
  x.at(1, 0) = 10.0f;
  x.at(2, 0) = 100.0f;
  Tensor out(3, 1);
  kernels::ref_spmm(a, x, out, false, &w);
  EXPECT_FLOAT_EQ(out.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(out.at(2, 0), 305.0f);
}

TEST(WeightedAgg, AllKernelsMatchWeightedReference) {
  Rng rng(50);
  const CSR a = random_csr(64, 400, rng);
  const auto w = test_weights(a, 3);
  const Tensor x = Tensor::randn(64, 6, rng);
  Tensor ref(64, 6);
  kernels::ref_spmm(a, x, ref, false, &w);

  Tensor coo(64, 6), csr(64, 6), ge(64, 6), sl(64, 6);
  // coo_from_csr preserves CSR nnz order, so the same array aligns.
  kernels::agg_coo(graph::coo_from_csr(a), x, coo, false, &w);
  kernels::agg_csr(a, x, csr, false, &w);
  kernels::agg_gespmm(a, x, ge, false, &w);
  kernels::agg_sliced(sliced::slice(a, 8), x, sl, 4, false, {&w});
  EXPECT_LT(ops::max_abs_diff(ref, coo), 1e-5f);
  EXPECT_LT(ops::max_abs_diff(ref, csr), 1e-5f);
  EXPECT_LT(ops::max_abs_diff(ref, ge), 1e-5f);
  EXPECT_LT(ops::max_abs_diff(ref, sl), 1e-4f);
}

TEST(WeightedAgg, UnitWeightsBitIdenticalToUnweighted) {
  Rng rng(51);
  const CSR a = random_csr(48, 300, rng);
  const std::vector<float> ones(a.nnz(), 1.0f);
  const Tensor x = Tensor::randn(48, 5, rng);
  Tensor plain(48, 5), unit(48, 5);
  kernels::ref_spmm(a, x, plain);
  kernels::ref_spmm(a, x, unit, false, &ones);
  for (std::size_t i = 0; i < plain.storage().size(); ++i) {
    ASSERT_EQ(plain.storage()[i], unit.storage()[i]) << "elem " << i;
  }
  // Null and empty weight arguments both take the legacy loop.
  const std::vector<float> empty;
  Tensor viaEmpty(48, 5);
  kernels::ref_spmm(a, x, viaEmpty, false, &empty);
  for (std::size_t i = 0; i < plain.storage().size(); ++i) {
    ASSERT_EQ(plain.storage()[i], viaEmpty.storage()[i]);
  }
}

TEST(WeightedAgg, TransposeWeightsFollowEdges) {
  Rng rng(52);
  const int n = 90;
  const CSR a = random_csr(n, 700, rng);
  // Encode each edge's identity into its weight; n < 1000 keeps it exact.
  std::vector<float> w(a.nnz());
  for (int r = 0; r < a.rows; ++r) {
    for (int i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
      w[i] = static_cast<float>(a.col_idx[i] * 1000 + r);
    }
  }
  const CSR t = graph::transpose(a);
  const auto wt = graph::transpose_weights(a, w);
  ASSERT_EQ(wt.size(), t.nnz());
  // In the transpose, row = original source, column = original destination.
  for (int s = 0; s < t.rows; ++s) {
    for (int i = t.row_ptr[s]; i < t.row_ptr[s + 1]; ++i) {
      EXPECT_FLOAT_EQ(wt[i], static_cast<float>(s * 1000 + t.col_idx[i]));
    }
  }
}

TEST(WeightedAgg, DegreesSumIncidentWeights) {
  Rng rng(53);
  const CSR a = random_csr(32, 200, rng);
  const auto w = test_weights(a, 9);
  const auto deg = kernels::degrees(a, &w);
  ASSERT_EQ(static_cast<int>(deg.size()), a.rows);
  for (int r = 0; r < a.rows; ++r) {
    float sum = 0.0f;
    for (int i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) sum += w[i];
    EXPECT_EQ(deg[r], sum);
  }
  // Unweighted degrees stay the exact integer counts, now as floats.
  const auto plain = kernels::degrees(a);
  for (int r = 0; r < a.rows; ++r) {
    EXPECT_EQ(plain[r], static_cast<float>(a.degree(r)));
  }
}

/// Weighted DTDG for partition tests: weights differ per member so the
/// shared overlap topology genuinely carries distinct value stripes.
graph::DTDG weighted_dtdg(int nodes, int events, int snaps, int feat) {
  graph::DatasetConfig cfg;
  cfg.name = "tw";
  cfg.num_nodes = nodes;
  cfg.raw_events = events;
  cfg.num_snapshots = snaps;
  cfg.feat_dim = feat;
  cfg.edge_life = 4.0;
  auto g = graph::generate(cfg);
  for (std::size_t t = 0; t < g.snapshots.size(); ++t) {
    g.snapshots[t].edge_w =
        test_weights(g.snapshots[t].adj, static_cast<int>(t) * 13);
  }
  return g;
}

TEST(WeightedAgg, PartitionStripeWeightsMatchPerSnapshotReference) {
  const auto g = weighted_dtdg(80, 900, 6, 3);
  const auto part = sliced::build_partition(g, 1, 4);
  ASSERT_EQ(part.overlap_w.size(), 4u);
  ASSERT_EQ(part.exclusive_w.size(), 4u);
  std::vector<const Tensor*> feats;
  for (int i = 0; i < 4; ++i) feats.push_back(&g.snapshots[1 + i].features);
  const Tensor coal = sliced::coalesce_features(feats);

  std::vector<const std::vector<float>*> ow;
  for (int i = 0; i < 4; ++i) ow.push_back(&part.overlap_w[i]);
  Tensor agg(80, 12);
  kernels::agg_sliced(part.overlap, coal, agg, 4, false, ow);
  for (int i = 0; i < 4; ++i) {
    Tensor e(80, 3);
    kernels::agg_sliced(part.exclusive[i], *feats[i], e, 4, false,
                        {&part.exclusive_w[i]});
    ops::add_into_cols(agg, e, i * 3);
  }
  const auto split = sliced::split_coalesced(agg, 4);
  for (int i = 0; i < 4; ++i) {
    Tensor ref(80, 3);
    kernels::ref_spmm(g.snapshots[1 + i].adj, *feats[i], ref, false,
                      &g.snapshots[1 + i].edge_w);
    EXPECT_LT(ops::max_abs_diff(split[i], ref), 1e-4f) << "snapshot " << i;
  }
}

TEST(WeightedAgg, TransposedPartitionWeightsMatchBackwardReference) {
  const auto g = weighted_dtdg(60, 700, 5, 2);
  const auto part = sliced::build_partition(g, 0, 3);
  std::vector<const Tensor*> feats;
  for (int i = 0; i < 3; ++i) feats.push_back(&g.snapshots[i].features);
  const Tensor coal = sliced::coalesce_features(feats);

  std::vector<const std::vector<float>*> ow;
  for (int i = 0; i < 3; ++i) ow.push_back(&part.overlap_w_t[i]);
  Tensor agg(60, 6);
  kernels::agg_sliced(part.overlap_t, coal, agg, 4, false, ow);
  for (int i = 0; i < 3; ++i) {
    Tensor e(60, 2);
    kernels::agg_sliced(part.exclusive_t[i], *feats[i], e, 4, false,
                        {&part.exclusive_w_t[i]});
    ops::add_into_cols(agg, e, i * 2);
  }
  const auto split = sliced::split_coalesced(agg, 3);
  for (int i = 0; i < 3; ++i) {
    const auto& snap = g.snapshots[i];
    const auto wt = graph::transpose_weights(snap.adj, snap.edge_w);
    Tensor ref(60, 2);
    kernels::ref_spmm(snap.adj_t, *feats[i], ref, false, &wt);
    EXPECT_LT(ops::max_abs_diff(split[i], ref), 1e-4f) << "snapshot " << i;
  }
}

TEST(WeightedAgg, CombinedDegreesMatchWeightedSnapshotDegrees) {
  const auto g = weighted_dtdg(50, 600, 4, 2);
  const auto part = sliced::build_partition(g, 0, 3);
  for (int i = 0; i < 3; ++i) {
    const auto combined = kernels::combined_degrees(
        part.overlap, part.exclusive[i], &part.overlap_w[i],
        &part.exclusive_w[i]);
    const auto full =
        kernels::degrees(g.snapshots[i].adj, &g.snapshots[i].edge_w);
    ASSERT_EQ(combined.size(), full.size());
    for (std::size_t v = 0; v < full.size(); ++v) {
      EXPECT_NEAR(combined[v], full[v], 1e-4f) << "vertex " << v;
    }
  }
}

TEST(WeightedAgg, UnweightedGroupsBuildNoWeightArrays) {
  Rng rng(54);
  graph::DatasetConfig cfg;
  cfg.name = "t";
  cfg.num_nodes = 40;
  cfg.raw_events = 400;
  cfg.num_snapshots = 4;
  cfg.feat_dim = 2;
  cfg.edge_life = 3.0;
  const auto g = graph::generate(cfg);
  const auto part = sliced::build_partition(g, 0, 3);
  EXPECT_TRUE(part.overlap_w.empty());
  EXPECT_TRUE(part.overlap_w_t.empty());
  EXPECT_TRUE(part.exclusive_w.empty());
  EXPECT_TRUE(part.exclusive_w_t.empty());
}

// ---------- Determinism of the pooled kernels across thread counts ----------

/// Run kernel() under a 1-wide and an 8-wide ComputePool: the destination-
/// row-blocked dispatch must make the outputs bit-identical.
void expect_kernel_bitwise_stable(const std::function<Tensor()>& kernel) {
  ComputePool::instance().configure(1);
  const Tensor serial = kernel();
  ComputePool::instance().configure(8);
  const Tensor parallel = kernel();
  ComputePool::instance().configure(0);
  ASSERT_EQ(serial.storage().size(), parallel.storage().size());
  for (std::size_t i = 0; i < serial.storage().size(); ++i) {
    ASSERT_EQ(serial.storage()[i], parallel.storage()[i]) << "elem " << i;
  }
}

TEST(PooledKernels, SlicedAggBitIdenticalAcrossThreadCounts) {
  Rng rng(40);
  // Enough nnz * F to clear the parallel threshold; slice bound 8 produces
  // many slices per hub row, so block boundaries land inside row runs and
  // must be pulled to the next row change.
  const CSR a = random_csr(400, 12000, rng);
  const auto s = sliced::slice(a, 8);
  const Tensor x = Tensor::randn(400, 17, rng);
  expect_kernel_bitwise_stable([&] {
    Tensor out(400, 17);
    kernels::agg_sliced(s, x, out);
    return out;
  });
}

TEST(PooledKernels, CsrAndGespmmAggBitIdenticalAcrossThreadCounts) {
  Rng rng(41);
  const CSR a = random_csr(300, 9000, rng);
  const Tensor x = Tensor::randn(300, 23, rng);
  expect_kernel_bitwise_stable([&] {
    Tensor out(300, 23);
    kernels::agg_csr(a, x, out);
    return out;
  });
  expect_kernel_bitwise_stable([&] {
    Tensor out(300, 23);
    kernels::agg_gespmm(a, x, out);
    return out;
  });
}

TEST(PooledKernels, NormalizeBitIdenticalAcrossThreadCounts) {
  Rng rng(42);
  const CSR a = random_csr(500, 6000, rng);
  const Tensor x = Tensor::randn(500, 33, rng);
  Tensor agg(500, 33);
  kernels::ref_spmm(a, x, agg);
  const auto deg = kernels::degrees(a);
  expect_kernel_bitwise_stable([&] {
    Tensor h(500, 33);
    kernels::gcn_normalize(deg, x, agg, h);
    return h;
  });
  expect_kernel_bitwise_stable([&] {
    Tensor d_agg(500, 33), d_x(500, 33);
    kernels::gcn_normalize_backward(deg, x, d_agg, d_x);
    return d_agg;
  });
}

// ---------- Edge shapes through the new blocking logic ----------

class PooledEdgeShapes : public ::testing::Test {
 protected:
  void SetUp() override { ComputePool::instance().configure(8); }
  void TearDown() override { ComputePool::instance().configure(0); }
};

TEST_F(PooledEdgeShapes, EmptySnapshotProducesZeros) {
  // A snapshot with no edges slices to zero slices; the blocked kernel must
  // still zero the output and not dispatch anything.
  const CSR a{16, 16, std::vector<int>(17, 0), {}};
  const auto s = sliced::slice(a);
  EXPECT_EQ(s.num_slices(), 0u);
  Rng rng(43);
  const Tensor x = Tensor::randn(16, 5, rng);
  Tensor out = Tensor::full(16, 5, 7.0f);
  kernels::agg_sliced(s, x, out);
  EXPECT_EQ(ops::sum(out), 0.0f);
  Tensor out2 = Tensor::full(16, 5, 7.0f);
  kernels::agg_csr(a, x, out2);
  EXPECT_EQ(ops::sum(out2), 0.0f);
}

TEST_F(PooledEdgeShapes, SingleRowSliceMatchesReference) {
  // All edges land in one destination row: every slice shares that row, so
  // the whole kernel must collapse to a single block (no row is split).
  const int n = 64;
  std::vector<graph::Edge> es;
  for (int i = 0; i < 2048; ++i) es.push_back({5, i % n});
  const CSR a = graph::csr_from_edges(n, n, std::move(es));
  const auto s = sliced::slice(a, 4);
  EXPECT_GT(s.num_slices(), 8u);
  Rng rng(44);
  const Tensor x = Tensor::randn(n, 9, rng);
  Tensor ref(n, 9), got(n, 9);
  kernels::ref_spmm(a, x, ref);
  kernels::agg_sliced(s, x, got);
  for (std::size_t i = 0; i < ref.storage().size(); ++i) {
    ASSERT_EQ(ref.storage()[i], got.storage()[i]) << "elem " << i;
  }
}

TEST_F(PooledEdgeShapes, FeatureDimNotDivisibleByBlockCount) {
  // 37 rows / odd F: block sizes are uneven and must still cover exactly.
  Rng rng(45);
  const CSR a = random_csr(37, 3000, rng);
  const Tensor x = Tensor::randn(37, 29, rng);
  Tensor ref(37, 29), got(37, 29);
  kernels::ref_spmm(a, x, ref);
  const auto s = sliced::slice(a, 3);
  kernels::agg_sliced(s, x, got);
  EXPECT_LT(ops::max_abs_diff(ref, got), 1e-4f);
}

TEST_F(PooledEdgeShapes, RowsFewerThanThreads) {
  // 4 destination rows under an 8-wide pool: at most 4 blocks may run and
  // the result must match the reference exactly.
  Rng rng(46);
  const CSR a = random_csr(4, 4096, rng);
  const Tensor x = Tensor::randn(4, 64, rng);
  Tensor ref(4, 64), got(4, 64);
  kernels::ref_spmm(a, x, ref);
  const auto s = sliced::slice(a, 8);
  kernels::agg_sliced(s, x, got);
  for (std::size_t i = 0; i < ref.storage().size(); ++i) {
    ASSERT_EQ(ref.storage()[i], got.storage()[i]) << "elem " << i;
  }
}

// ---------- Memory-model properties (§3.2 / Fig. 5) ----------

TEST(MemoryModel, TransactionsFlatBelowDim8ThenRise) {
  // #T per row is constant while 4F <= 32 bytes, then grows (§3.2).
  Rng rng(12);
  const CSR a = random_csr(64, 512, rng);
  auto txns_at = [&](int f) {
    Tensor x = Tensor::randn(64, f, rng);
    Tensor out(64, f);
    return kernels::agg_gespmm(a, x, out).global_transactions;
  };
  EXPECT_EQ(txns_at(2), txns_at(4));
  EXPECT_EQ(txns_at(4), txns_at(8));
  EXPECT_GT(txns_at(16), txns_at(8));
  EXPECT_GT(txns_at(64), txns_at(16));
}

TEST(MemoryModel, RequestsFlatBelowDim32ThenRise) {
  Rng rng(13);
  const CSR a = random_csr(64, 512, rng);
  auto reqs_at = [&](int f) {
    Tensor x = Tensor::randn(64, f, rng);
    Tensor out(64, f);
    return kernels::agg_gespmm(a, x, out).global_requests;
  };
  EXPECT_EQ(reqs_at(8), reqs_at(16));
  EXPECT_EQ(reqs_at(16), reqs_at(32));
  EXPECT_GT(reqs_at(64), reqs_at(32));
  EXPECT_GT(reqs_at(128), reqs_at(64));
}

TEST(MemoryModel, CoalescedSmallDimSavesTransactions) {
  // Four F=2 snapshots aggregated via one coalesced pass move fewer
  // transactions over the shared topology than four separate passes.
  Rng rng(14);
  const CSR a = random_csr(128, 1024, rng);
  const auto s = sliced::slice(a);
  Tensor x1 = Tensor::randn(128, 2, rng);
  Tensor o1(128, 2);
  const auto per = kernels::agg_sliced(s, x1, o1);

  Tensor x4 = Tensor::randn(128, 8, rng);
  Tensor o4(128, 8);
  const auto coal = kernels::agg_sliced(s, x4, o4);
  EXPECT_LT(coal.global_transactions, 4 * per.global_transactions);
  EXPECT_LT(coal.global_requests, 4 * per.global_requests);
}

TEST(MemoryModel, VectorLoadsReduceRequestsForLargeDims) {
  // 4 snapshots x F=16 -> 64-wide rows: one vector request instead of four
  // separate ones (the paper's §5.3 example).
  Rng rng(15);
  const CSR a = random_csr(128, 1024, rng);
  const auto s = sliced::slice(a);
  Tensor x1 = Tensor::randn(128, 16, rng);
  Tensor o1(128, 16);
  const auto per = kernels::agg_sliced(s, x1, o1);
  Tensor x4 = Tensor::randn(128, 64, rng);
  Tensor o4(128, 64);
  const auto coal = kernels::agg_sliced(s, x4, o4);
  EXPECT_LT(coal.global_requests, 4 * per.global_requests);
  // Transactions stay equal: bytes are bytes.
  EXPECT_LE(coal.global_transactions, 4 * per.global_transactions);
}

TEST(MemoryModel, SliceCoalescingRaisesWarpEfficiency) {
  Rng rng(16);
  const CSR a = random_csr(128, 1024, rng);
  const auto s = sliced::slice(a);
  Tensor x = Tensor::randn(128, 4, rng);
  Tensor out(128, 4);
  const auto with = kernels::agg_sliced(s, x, out, /*coalesce_num=*/4);
  const auto without = kernels::agg_sliced(s, x, out, /*coalesce_num=*/1);
  EXPECT_GT(with.warp_efficiency(), without.warp_efficiency());
}

TEST(MemoryModel, GespmmReadsAdjacencyOncePerRowUnlikeCsr) {
  // For F > 32 the plain CSR kernel re-reads column indices per feature
  // tile; GE-SpMM stages them in shared memory.
  Rng rng(17);
  const CSR a = random_csr(64, 2048, rng);
  Tensor x = Tensor::randn(64, 128, rng);
  Tensor out(64, 128);
  const auto csr = kernels::agg_csr(a, x, out);
  const auto ge = kernels::agg_gespmm(a, x, out);
  EXPECT_LT(ge.global_transactions, csr.global_transactions);
  EXPECT_GT(ge.shared_accesses, csr.shared_accesses);
}

TEST(MemoryModel, CooPaysAtomicsPerEdge) {
  Rng rng(18);
  const CSR a = random_csr(64, 512, rng);
  Tensor x = Tensor::randn(64, 4, rng);
  Tensor out(64, 4);
  const auto coo = kernels::agg_coo(graph::coo_from_csr(a), x, out);
  EXPECT_EQ(coo.atomic_ops, a.nnz() * 4);
  const auto ge = kernels::agg_gespmm(a, x, out);
  EXPECT_GT(coo.global_transactions, ge.global_transactions);
}

// ---------- Update kernels ----------

TEST(Update, GemmMatchesOps) {
  Rng rng(19);
  const Tensor h = Tensor::randn(37, 13, rng);
  const Tensor w = Tensor::randn(13, 9, rng);
  Tensor out;
  kernels::update_gemm(h, w, out);
  EXPECT_LT(ops::max_abs_diff(out, ops::matmul(h, w)), 1e-4f);
}

TEST(Update, WeightReuseMatchesPerSnapshotMath) {
  Rng rng(20);
  const Tensor w = Tensor::randn(8, 5, rng);
  std::vector<Tensor> hs;
  std::vector<const Tensor*> hp;
  for (int i = 0; i < 4; ++i) hs.push_back(Tensor::randn(21, 8, rng));
  for (const auto& h : hs) hp.push_back(&h);
  std::vector<Tensor> outs;
  kernels::update_weight_reuse(hp, w, outs);
  for (int i = 0; i < 4; ++i) {
    EXPECT_LT(ops::max_abs_diff(outs[i], ops::matmul(hs[i], w)), 1e-4f);
  }
}

TEST(Update, WeightReuseMovesFewerBytesThanRepeatedGemm) {
  const auto single = kernels::gemm_stats(1000, 64, 64);
  const auto reused = kernels::gemm_weight_reuse_stats(1000, 64, 64, 8);
  EXPECT_LT(reused.global_transactions, 8 * single.global_transactions);
  EXPECT_EQ(reused.flops, 8 * single.flops);
}

// ---------- Stats builders sanity ----------

TEST(StatsBuilders, ElementwiseScalesLinearly) {
  const auto a = kernels::elementwise_stats(1000, 2, 3);
  const auto b = kernels::elementwise_stats(2000, 2, 3);
  EXPECT_EQ(b.flops, 2 * a.flops);
  EXPECT_NEAR(static_cast<double>(b.global_transactions),
              2.0 * a.global_transactions, 2.0);
}

TEST(StatsBuilders, ZeroWorkYieldsZeroStats) {
  const auto s = kernels::gemm_stats(0, 10, 10);
  EXPECT_EQ(s.flops, 0u);
  EXPECT_EQ(s.global_transactions, 0u);
}

}  // namespace
}  // namespace pipad
