// Host-aware dynamic tuning tests: table-driven decide_sper cases
// (memory bound, transfer-bound, forced S_per, measured-vs-analytic
// divergence), per-lane occupancy window queries, the streaming
// HostStream extractor (backpressure, charging, exceptions), and the
// first-steady-frame latency regression of streaming vs batch prep.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "host/host_lane.hpp"
#include "pipad/pipad_trainer.hpp"
#include "pipad/tuner.hpp"
#include "test_util.hpp"

namespace pipad {
namespace {

using gpusim::Resource;
using runtime::MeasuredOccupancy;
using runtime::TunerInputs;
using runtime::TunerMode;

// ---------- decide_sper: table-driven cases ----------

/// A workload whose kernels clear the launch-latency floor, on which the
/// analytic tuner prefers large S_per (high overlap, cheap transfers).
TunerInputs base_inputs() {
  TunerInputs in;
  in.shape = runtime::WorkloadShape{200000, 2000000, 2, 6, 32, 4};
  in.sper_options = {2, 4, 8};
  in.frame_size = 8;
  in.mean_pair_or = 0.9;
  in.per_snapshot_mem = 8u << 20;
  in.device_available = 16ull << 30;
  return in;
}

gpusim::CostModel cost_model() {
  return gpusim::CostModel((gpusim::SimConfig()));
}

TEST(DecideSper, PicksAParallelOptionOnHighOverlapWorkloads) {
  const auto cm = cost_model();
  const auto d = runtime::decide_sper(cm, base_inputs());
  EXPECT_GT(d.s_per, 1);
  EXPECT_FALSE(d.measured_rejected);
}

TEST(DecideSper, ForcedSperBypassesEverythingButTheFrameSize) {
  const auto cm = cost_model();
  auto in = base_inputs();
  in.forced_sper = 4;
  EXPECT_EQ(runtime::decide_sper(cm, in).s_per, 4);
  in.forced_sper = 32;  // Clamped to the frame.
  EXPECT_EQ(runtime::decide_sper(cm, in).s_per, 8);
  // Forced wins even when the option would be memory-rejected.
  in.forced_sper = 4;
  in.device_available = 1;
  EXPECT_EQ(runtime::decide_sper(cm, in).s_per, 4);
}

TEST(DecideSper, MemoryBoundRejectsOptionsThatWouldOom) {
  const auto cm = cost_model();
  auto in = base_inputs();
  // Room for ~2.5 snapshots at 8 MB each (with the 1.2x/0.8x headroom):
  // S=4 and S=8 must be rejected, S=2 survives.
  in.device_available = 30u << 20;
  EXPECT_EQ(runtime::decide_sper(cm, in).s_per, 2);
  in.device_available = 1u << 20;  // Nothing fits: fall back to 1.
  EXPECT_EQ(runtime::decide_sper(cm, in).s_per, 1);
}

TEST(DecideSper, OptionsBeyondTheFrameAreSkipped) {
  const auto cm = cost_model();
  auto in = base_inputs();
  in.frame_size = 3;
  EXPECT_EQ(runtime::decide_sper(cm, in).s_per, 2);
}

TEST(DecideSper, MeasuredModeWithoutASampleFallsBackToAnalytic) {
  const auto cm = cost_model();
  auto analytic = base_inputs();
  auto measured = base_inputs();
  measured.mode = TunerMode::Measured;  // measured.measured stays invalid.
  const auto a = runtime::decide_sper(cm, analytic);
  const auto m = runtime::decide_sper(cm, measured);
  EXPECT_EQ(a.s_per, m.s_per);
  EXPECT_FALSE(m.measured_rejected);
}

/// A transfer-bound workload: wide features, low overlap — per-partition
/// transfers dwarf the device compute.
TunerInputs transfer_bound_inputs() {
  auto in = base_inputs();
  in.shape.feat_dim = 512;
  in.shape.hidden_dim = 16;
  in.mean_pair_or = 0.3;
  return in;
}

TEST(DecideSper, MeasuredVsAnalyticDivergeOnTransferBoundWorkloads) {
  const auto cm = cost_model();
  // Analytic: even transfer-bound, larger S_per wins the bottleneck metric
  // (the overlap topology ships once per partition, §4.1).
  auto analytic = transfer_bound_inputs();
  const int analytic_s = runtime::decide_sper(cm, analytic).s_per;
  EXPECT_GT(analytic_s, 1);

  // Measured: the preparing epoch showed a host+device pipeline far too
  // cheap to hide those transfers — every parallel option stalls, and the
  // tuner must say so and settle for S=1.
  auto measured = transfer_bound_inputs();
  measured.mode = TunerMode::Measured;
  measured.measured.host_us_per_snapshot = 1.0;
  measured.measured.snapshots = 16;
  const auto m = runtime::decide_sper(cm, measured);
  EXPECT_EQ(m.s_per, 1);
  EXPECT_TRUE(m.measured_rejected);
  EXPECT_LT(m.s_per, analytic_s);
}

TEST(DecideSper, LargeMeasuredHostCostKeepsTheAnalyticChoice) {
  const auto cm = cost_model();
  // The same transfer-bound shape, but the measured lanes are busy enough
  // to hide the transfers: nothing is rejected, the modes agree.
  auto in = transfer_bound_inputs();
  const int analytic_s = runtime::decide_sper(cm, in).s_per;
  in.mode = TunerMode::Measured;
  in.measured.host_us_per_snapshot = 1e9;
  in.measured.snapshots = 16;
  const auto m = runtime::decide_sper(cm, in);
  EXPECT_EQ(m.s_per, analytic_s);
  EXPECT_FALSE(m.measured_rejected);
}

TEST(DecideSper, PipelineOffDisablesTheStallRejection) {
  const auto cm = cost_model();
  auto in = transfer_bound_inputs();
  in.enable_pipeline = false;  // No async transfers: nothing to stall.
  in.mode = TunerMode::Measured;
  in.measured.host_us_per_snapshot = 1.0;
  in.measured.snapshots = 16;
  const auto m = runtime::decide_sper(cm, in);
  EXPECT_GT(m.s_per, 1);
  EXPECT_FALSE(m.measured_rejected);
}

// ---------- Occupancy window queries ----------

TEST(OccupancyWindow, ClipsOpsToTheWindow) {
  gpusim::Timeline tl;
  tl.set_worker_lanes(2);
  tl.submit_worker(0, "prep:a", 10.0);        // [0, 10)
  tl.submit_worker(0, "compute:k", 10.0);     // [10, 20)
  tl.submit_worker(1, "prep:b", 30.0);        // [0, 30)
  const auto all = tl.worker_busy_in(5.0, 15.0);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_NEAR(all[0], 10.0, 1e-9);  // 5 of prep:a + 5 of compute:k.
  EXPECT_NEAR(all[1], 10.0, 1e-9);  // Clipped slice of prep:b.
  const auto prep = tl.worker_busy_in(5.0, 15.0, "prep:");
  EXPECT_NEAR(prep[0], 5.0, 1e-9);
  EXPECT_NEAR(prep[1], 10.0, 1e-9);
  // Empty and inverted windows are zero.
  for (double v : tl.worker_busy_in(40.0, 50.0)) EXPECT_EQ(v, 0.0);
  for (double v : tl.worker_busy_in(15.0, 5.0)) EXPECT_EQ(v, 0.0);
}

TEST(OccupancyWindow, HostLaneWrapperSeesChargedPrep) {
  gpusim::Gpu gpu;
  host::HostLane lane(gpu, 2);
  lane.run("job", 4, [](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  const double t1 = gpu.timeline().makespan();
  double total = 0.0;
  for (double v : lane.occupancy(0.0, t1, "prep:job")) total += v;
  EXPECT_NEAR(total, gpu.timeline().busy_us(Resource::CpuWorker), 1e-9);
  EXPECT_GT(total, 0.0);
}

// ---------- HostStream: streaming extraction ----------

TEST(HostStream, RunsEveryJobAndChargesTheLanes) {
  gpusim::Gpu gpu;
  host::HostLane lane(gpu, 2);
  std::vector<int> out(8, 0);
  auto stream = lane.stream("job", 8, [&](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    out[i] = static_cast<int>(i) + 1;
  });
  for (std::size_t j = 0; j < 8; ++j) {
    EXPECT_GT(stream->wait(j), 0.0);
  }
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], i + 1);
  // All eight measured jobs landed on the worker lanes.
  int prep_ops = 0;
  for (const auto& rec : gpu.timeline().records()) {
    ASSERT_EQ(rec.resource, Resource::CpuWorker);
    EXPECT_LT(rec.lane, 2u);
    ++prep_ops;
  }
  EXPECT_EQ(prep_ops, 8);
  // wait() on a retired job is idempotent.
  EXPECT_EQ(stream->wait(3), stream->wait(3));
}

TEST(HostStream, WindowBoundsInFlightJobs) {
  gpusim::Gpu gpu;
  host::HostLane lane(gpu, 2);
  constexpr std::size_t kWindow = 3;
  std::atomic<int> started{0};
  auto stream = lane.stream(
      "job", 12,
      [&](std::size_t) {
        started.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      },
      kWindow);
  for (std::size_t j = 0; j < 12; ++j) {
    stream->wait(j);
    // Backpressure: at most (retired so far) + window jobs may ever have
    // started — the stream never runs ahead of the consumer by more than
    // the in-flight window.
    EXPECT_LE(static_cast<std::size_t>(started.load()),
              stream->retired() + kWindow);
  }
  EXPECT_EQ(started.load(), 12);
  EXPECT_EQ(stream->retired(), 12u);
}

TEST(HostStream, AdaptiveWindowGrowsWhenExtractionBound) {
  gpusim::Gpu gpu;
  host::HostLane lane(gpu, 2);
  const std::size_t base = lane.threads();  // The process-wide pool width.
  auto stream = lane.stream(
      "job", 64,
      [&](std::size_t) {
        // Well above any sanitizer-inflated wait overhead, so production
        // cost dominates the consumption budget even under TSan/ASan.
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      },
      /*window=*/0, /*adaptive=*/true);
  EXPECT_EQ(stream->window(), 2 * base);  // 0 = the 2x-pool default.
  for (std::size_t j = 0; j < 64; ++j) {
    // Re-waiting a retired job is free, so these tight calls collapse the
    // measured inter-wait gap to microseconds: production (2 ms) dwarfs
    // the consumption budget and the stream is extraction-bound.
    for (int k = 0; k < 8; ++k) stream->wait(j > 0 ? j - 1 : 0);
    stream->wait(j);
  }
  EXPECT_EQ(stream->window(), 4 * base);
}

TEST(HostStream, AdaptiveWindowShrinksWhenConsumerBound) {
  gpusim::Gpu gpu;
  host::HostLane lane(gpu, 2);
  const std::size_t base = lane.threads();
  auto stream = lane.stream(
      "job", 64, [&](std::size_t) {},
      /*window=*/1000000, /*adaptive=*/true);
  EXPECT_EQ(stream->window(), 4 * base);  // Clamps down to 4x pool width.
  for (std::size_t j = 0; j < 64; ++j) {
    // Instant jobs, a 2 ms consumer: results would only pile up, so the
    // window walks back down to the pool width.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    stream->wait(j);
  }
  EXPECT_EQ(stream->window(), base);
}

TEST(HostStream, OutOfOrderWaitStillDrains) {
  gpusim::Gpu gpu;
  host::HostLane lane(gpu, 2);
  std::atomic<int> ran{0};
  auto stream = lane.stream(
      "job", 6, [&](std::size_t) { ran.fetch_add(1); }, 2);
  // Waiting on the last job first forces the stream through the whole
  // window-refill path.
  EXPECT_GT(stream->wait(5), 0.0);
  EXPECT_EQ(ran.load(), 6);
  for (std::size_t j = 0; j < 6; ++j) EXPECT_GT(stream->wait(j), 0.0);
}

TEST(HostStream, DestructorDrainsUnconsumedJobs) {
  gpusim::Gpu gpu;
  host::HostLane lane(gpu, 2);
  std::atomic<int> ran{0};
  {
    auto stream = lane.stream(
        "job", 10, [&](std::size_t) { ran.fetch_add(1); }, 4);
    stream->wait(0);
  }  // Dtor must retire the rest; jobs reference `ran` on this frame.
  EXPECT_EQ(ran.load(), 10);
}

TEST(HostStream, RethrowsTheFirstJobFailureFromWait) {
  gpusim::Gpu gpu;
  host::HostLane lane(gpu, 2);
  std::atomic<int> ran{0};
  auto stream = lane.stream(
      "job", 6,
      [&](std::size_t i) {
        ran.fetch_add(1);
        if (i == 2) throw std::runtime_error("job failed");
      },
      2);
  EXPECT_THROW(
      {
        for (std::size_t j = 0; j < 6; ++j) stream->wait(j);
      },
      std::runtime_error);
  EXPECT_EQ(ran.load(), 6);  // The failure drained, not wedged, the stream.
  // Sticky: the failed batch can never hand out results as if it
  // succeeded — every later wait (including on the failed job) throws.
  EXPECT_THROW(stream->wait(2), std::runtime_error);
  EXPECT_THROW(stream->wait(5), std::runtime_error);
}

// ---------- First-steady-frame latency: streaming vs batch ----------

using testutil::train_long;

TEST(StreamingPrep, FirstSteadyFrameBeatsTheBatchExtractor) {
  // Long timeline (48 snapshots, ~41 sliding frames), sized so partition
  // extraction has real measurable cost: the batch extractor makes the
  // first steady frame wait for every partition, the stream only for its
  // own. The margin is structural (~40 extractions vs ~2), so the
  // comparison holds despite run-to-run measurement noise.
  const auto g = graph::generate(testutil::tiny_config(2048, 48, 2));
  const auto batch = train_long(g, false, TunerMode::Analytic, 2);
  const auto stream = train_long(g, true, TunerMode::Analytic, 2);
  EXPECT_GT(batch.first_steady_us, 0.0);
  EXPECT_GT(stream.first_steady_us, 0.0);
  EXPECT_LT(stream.first_steady_us, batch.first_steady_us);
  // Streaming changes scheduling, never math: losses are bit-identical.
  ASSERT_EQ(batch.frame_loss.size(), stream.frame_loss.size());
  for (std::size_t i = 0; i < batch.frame_loss.size(); ++i) {
    EXPECT_EQ(batch.frame_loss[i], stream.frame_loss[i]) << "frame " << i;
  }
}

TEST(MeasuredTuner, DecisionsAndLossesBitIdenticalAcrossThreadCounts) {
  // The acceptance bar for the charge-aware tuner: occupancy is derived
  // from charged sim-time, so --threads must not leak into decisions.
  const auto g = graph::generate(testutil::tiny_config(256, 16, 2));
  std::map<int, int> d1, d8;
  const auto r1 = train_long(g, true, TunerMode::Measured, 1, &d1);
  const auto r8 = train_long(g, true, TunerMode::Measured, 8, &d8);
  EXPECT_EQ(d1, d8);
  ASSERT_EQ(r1.frame_loss.size(), r8.frame_loss.size());
  for (std::size_t i = 0; i < r1.frame_loss.size(); ++i) {
    EXPECT_EQ(r1.frame_loss[i], r8.frame_loss[i]) << "frame " << i;
  }
}

TEST(MeasuredTuner, PicksFromConfiguredOptionsOnRealTraining) {
  const auto g = graph::generate(testutil::tiny_config(64, 16, 2));
  std::map<int, int> dec;
  train_long(g, true, TunerMode::Measured, 2, &dec);
  ASSERT_FALSE(dec.empty());
  for (const auto& [start, s] : dec) {
    EXPECT_TRUE(s == 1 || s == 2 || s == 4 || s == 8) << "S_per=" << s;
  }
}

}  // namespace
}  // namespace pipad
