// HostLane subsystem tests: measured multi-lane charging, per-job
// completion events, worker-lane timeline semantics, and end-to-end
// determinism of the trainer across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "gpusim/trace.hpp"
#include "host/host_lane.hpp"
#include "pipad/pipad_trainer.hpp"
#include "test_util.hpp"

namespace pipad {
namespace {

using gpusim::Resource;

// ---------- Timeline worker-lane semantics ----------

TEST(TimelineLanes, WorkerLanesAreIndependent) {
  gpusim::Timeline tl;
  tl.set_worker_lanes(3);
  EXPECT_EQ(tl.worker_lanes(), 3u);
  tl.submit_worker(0, "prep:a", 10.0);
  tl.submit_worker(1, "prep:b", 4.0);
  tl.submit_worker(0, "prep:c", 5.0);
  // Lane 0 serializes its own ops; lane 1 runs concurrently from t=0.
  EXPECT_NEAR(tl.worker_lane_ready(0), 15.0, 1e-9);
  EXPECT_NEAR(tl.worker_lane_ready(1), 4.0, 1e-9);
  EXPECT_NEAR(tl.worker_lane_ready(2), 0.0, 1e-9);
  // Aggregate views: busy sums lanes, ready is the latest lane.
  EXPECT_NEAR(tl.busy_us(Resource::CpuWorker), 19.0, 1e-9);
  EXPECT_NEAR(tl.resource_ready(Resource::CpuWorker), 15.0, 1e-9);
}

TEST(TimelineLanes, SubmitRejectsCpuWorkerResource) {
  gpusim::Timeline tl;
  EXPECT_THROW(tl.submit(0, Resource::CpuWorker, "prep:x", 1.0), Error);
}

TEST(TimelineLanes, RecordEventAtGatesAStream) {
  gpusim::Timeline tl;
  const auto s = tl.create_stream("copy");
  const auto ev = tl.record_event_at(42.0);
  tl.wait_event(s, ev);
  EXPECT_NEAR(tl.stream_ready(s), 42.0, 1e-9);
  // An op on the gated stream cannot start before the event time.
  const double end = tl.submit(s, Resource::H2D, "h2d:x", 5.0);
  EXPECT_NEAR(end, 47.0, 1e-9);
}

TEST(TimelineLanes, NotBeforeDelaysLaneStart) {
  gpusim::Timeline tl;
  tl.set_worker_lanes(2);
  const double end = tl.submit_worker(1, "prep:late", 3.0, 100.0);
  EXPECT_NEAR(end, 103.0, 1e-9);
}

TEST(TimelineLanes, SetWorkerLanesNeverShrinks) {
  gpusim::Timeline tl;
  tl.set_worker_lanes(4);
  tl.submit_worker(3, "prep:x", 5.0);
  tl.set_worker_lanes(2);  // A later, narrower HostLane on the same Gpu.
  EXPECT_EQ(tl.worker_lanes(), 4u);
  EXPECT_NEAR(tl.busy_us(Resource::CpuWorker), 5.0, 1e-9);
}

TEST(TimelineLanes, ResetClearsLaneStateButKeepsLaneCount) {
  gpusim::Timeline tl;
  tl.set_worker_lanes(4);
  tl.submit_worker(2, "prep:x", 7.0);
  tl.reset();
  EXPECT_EQ(tl.worker_lanes(), 4u);
  EXPECT_NEAR(tl.busy_us(Resource::CpuWorker), 0.0, 1e-9);
  EXPECT_NEAR(tl.worker_lane_ready(2), 0.0, 1e-9);
}

TEST(TimelineLanes, GanttRendersOneRowPerLane) {
  gpusim::Timeline tl;
  tl.set_worker_lanes(2);
  tl.submit_worker(0, "prep:a", 10.0);
  tl.submit_worker(1, "prep:b", 10.0);
  gpusim::GanttOptions opts;
  opts.width = 10;
  const std::string g = gpusim::render_gantt(tl, opts);
  EXPECT_NE(g.find("cpu-w0"), std::string::npos) << g;
  EXPECT_NE(g.find("cpu-w1"), std::string::npos) << g;
}

// ---------- HostLane ----------

TEST(HostLane, RegistersOneTimelineLanePerPoolThread) {
  gpusim::Gpu gpu;
  host::HostLane lane(gpu, 3);
  EXPECT_EQ(lane.threads(), 3u);
  EXPECT_EQ(gpu.timeline().worker_lanes(), 3u);
}

TEST(HostLane, ChargesMeasuredTimeToTheExecutingLane) {
  gpusim::Gpu gpu;
  host::HostLane lane(gpu, 2);
  std::atomic<int> ran{0};
  const auto batch = lane.run("job", 8, [&](std::size_t) {
    // Enough real work to measure (> 0 us on any clock).
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 8);
  ASSERT_EQ(batch.job_end_us.size(), 8u);
  for (double e : batch.job_end_us) {
    EXPECT_GT(e, 0.0);
    EXPECT_LE(e, batch.end_us);
  }
  // Every op landed on the CpuWorker resource with a valid lane and the
  // measured (non-zero) duration.
  int prep_ops = 0;
  for (const auto& rec : gpu.timeline().records()) {
    ASSERT_EQ(rec.resource, Resource::CpuWorker);
    EXPECT_LT(rec.lane, 2u);
    EXPECT_GT(rec.end_us - rec.start_us, 0.0);
    ++prep_ops;
  }
  EXPECT_EQ(prep_ops, 8);
  EXPECT_NEAR(gpu.timeline().busy_us(Resource::CpuWorker),
              gpu.timeline().busy_us_with_prefix("prep:job"), 1e-9);
}

TEST(HostLane, JobsOverlapAcrossLanes) {
  gpusim::Gpu gpu;
  host::HostLane lane(gpu, 4);
  lane.run("job", 8, [&](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  });
  // With 4 lanes and 8 equal jobs the batch must finish well before the
  // serial sum of the measured durations.
  const double busy = gpu.timeline().busy_us(Resource::CpuWorker);
  EXPECT_LT(gpu.timeline().makespan(), busy * 0.75);
}

TEST(HostLane, EmptyBatchIsANoOp) {
  gpusim::Gpu gpu;
  host::HostLane lane(gpu, 2);
  const auto batch = lane.run("job", 0, [&](std::size_t) { FAIL(); }, 5.0);
  EXPECT_EQ(batch.job_end_us.size(), 0u);
  EXPECT_NEAR(batch.end_us, 5.0, 1e-9);
  EXPECT_TRUE(gpu.timeline().records().empty());
}

TEST(HostLane, RethrowsJobExceptionAfterDrainingTheBatch) {
  gpusim::Gpu gpu;
  host::HostLane lane(gpu, 2);
  std::atomic<int> ran{0};
  EXPECT_THROW(lane.run("job", 6,
                        [&](std::size_t i) {
                          ran.fetch_add(1);
                          if (i == 1) throw std::runtime_error("job failed");
                        }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 6);
}

TEST(HostLane, ChargeAllOccupiesEveryLane) {
  gpusim::Gpu gpu;
  host::HostLane lane(gpu, 3);
  const double end = lane.charge_all("build", 10.0, 2.0);
  EXPECT_NEAR(end, 12.0, 1e-9);
  EXPECT_NEAR(gpu.timeline().busy_us(Resource::CpuWorker), 30.0, 1e-9);
  for (std::size_t l = 0; l < 3; ++l) {
    EXPECT_NEAR(gpu.timeline().worker_lane_ready(l), 12.0, 1e-9);
  }
}

TEST(HostLane, ChargeAllBoundsLanesByTaskCount) {
  gpusim::Gpu gpu;
  host::HostLane lane(gpu, 4);
  // A region with only 2 parallel tasks occupied 2 lanes, not 4.
  lane.charge_all("build", 10.0, 0.0, 2);
  EXPECT_NEAR(gpu.timeline().busy_us(Resource::CpuWorker), 20.0, 1e-9);
  EXPECT_NEAR(gpu.timeline().worker_lane_ready(2), 0.0, 1e-9);
  EXPECT_NEAR(gpu.timeline().worker_lane_ready(3), 0.0, 1e-9);
}

// ---------- End-to-end determinism across thread counts ----------

TEST(HostLane, TrainerIsDeterministicAcrossThreadCounts) {
  const auto g = graph::generate(testutil::tiny_config(64, 12, 2));
  models::TrainConfig cfg;
  cfg.model = models::ModelType::TGcn;
  cfg.frame_size = 4;
  cfg.epochs = 2;
  cfg.max_frames_per_epoch = 3;
  cfg.hidden_dim = 6;

  auto run = [&](int threads) {
    gpusim::Gpu gpu;
    runtime::PipadOptions opts;
    opts.host_threads = threads;
    runtime::PipadTrainer pip(gpu, g, cfg, opts);
    const auto r = pip.train();
    return std::make_pair(r.frame_loss, pip.sper_decisions());
  };
  const auto [loss1, dec1] = run(1);
  const auto [loss8, dec8] = run(8);

  ASSERT_EQ(loss1.size(), loss8.size());
  for (std::size_t i = 0; i < loss1.size(); ++i) {
    // Bitwise identical: the prep math never depends on the thread count.
    EXPECT_EQ(loss1[i], loss8[i]) << "frame " << i;
  }
  EXPECT_EQ(dec1, dec8);
}

TEST(HostLane, PrepChargedToTimelineComesFromRealExecution) {
  const auto g = graph::generate(testutil::tiny_config(64, 12, 2));
  models::TrainConfig cfg;
  cfg.model = models::ModelType::TGcn;
  cfg.frame_size = 4;
  cfg.epochs = 2;
  cfg.max_frames_per_epoch = 3;
  cfg.hidden_dim = 6;
  gpusim::Gpu gpu;
  runtime::PipadOptions opts;
  opts.host_threads = 2;
  runtime::PipadTrainer pip(gpu, g, cfg, opts);
  const auto r = pip.train();
  // Slicing + profiling + overlap extraction all ran and were measured.
  EXPECT_GT(gpu.timeline().busy_us_with_prefix("prep:graph-analyzer"), 0.0);
  EXPECT_GT(gpu.timeline().busy_us_with_prefix("prep:profiling"), 0.0);
  EXPECT_GT(gpu.timeline().busy_us_with_prefix("prep:overlap-extract"), 0.0);
  EXPECT_GT(r.prep_us, 0.0);
  EXPECT_EQ(gpu.timeline().worker_lanes(), 2u);
}

}  // namespace
}  // namespace pipad
