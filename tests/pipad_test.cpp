// PiPAD runtime tests: numerical agreement with the baselines, end-to-end
// speedup, tuner behaviour, reuse buffers, and the ablation toggles.
#include <gtest/gtest.h>

#include "baselines/baseline_trainer.hpp"
#include "common/compute_pool.hpp"
#include "pipad/offline_analysis.hpp"
#include "pipad/pipad_trainer.hpp"
#include "pipad/reuse.hpp"
#include "test_util.hpp"

namespace pipad {
namespace {

using models::ModelType;
using models::TrainConfig;
using models::TrainResult;
using runtime::PipadOptions;
using runtime::PipadTrainer;

using testutil::small_cfg;
using testutil::train_snapshot;
using testutil::weighted_tiny;

TEST(Pipad, LossesMatchPygtBaseline) {
  const auto g = graph::generate(testutil::tiny_config(32, 10, 2));
  gpusim::Gpu gpu_b, gpu_p;
  baselines::BaselineTrainer base(gpu_b, g, small_cfg(),
                                  baselines::Variant::PyGT);
  PipadTrainer pip(gpu_p, g, small_cfg());
  const auto rb = base.train();
  const auto rp = pip.train();
  ASSERT_EQ(rb.frame_loss.size(), rp.frame_loss.size());
  for (std::size_t i = 0; i < rb.frame_loss.size(); ++i) {
    EXPECT_NEAR(rp.frame_loss[i], rb.frame_loss[i],
                2e-3f * (1.0f + std::abs(rb.frame_loss[i])))
        << "frame " << i;
  }
}

class PipadAllModels : public ::testing::TestWithParam<ModelType> {};

TEST_P(PipadAllModels, MatchesBaselineAndIsFaster) {
  const auto g = graph::generate(testutil::tiny_config(64, 12, 2));
  gpusim::Gpu gpu_b, gpu_p;
  baselines::BaselineTrainer base(gpu_b, g, small_cfg(GetParam()),
                                  baselines::Variant::PyGT);
  PipadTrainer pip(gpu_p, g, small_cfg(GetParam()));
  const auto rb = base.train();
  const auto rp = pip.train();
  for (std::size_t i = 0; i < rb.frame_loss.size(); ++i) {
    EXPECT_NEAR(rp.frame_loss[i], rb.frame_loss[i],
                5e-3f * (1.0f + std::abs(rb.frame_loss[i])));
  }
  EXPECT_LT(rp.total_us, rb.total_us)
      << models::model_type_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Models, PipadAllModels,
                         ::testing::Values(ModelType::MpnnLstm,
                                           ModelType::EvolveGcn,
                                           ModelType::TGcn),
                         [](const auto& info) {
                           std::string n = models::model_type_name(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ---------- Determinism across thread counts (ComputePool hot path) ----------

class PipadThreadDeterminism : public ::testing::TestWithParam<ModelType> {};

TEST_P(PipadThreadDeterminism, LossesAndGradientsBitIdentical) {
  // Sized so the aggregation + GEMM kernels genuinely fan out at 8 threads
  // (above ComputePool::kMinRegionWork), not just fall back to serial.
  const auto g = graph::generate(testutil::tiny_config(512, 10, 8));
  auto cfg = small_cfg();
  cfg.hidden_dim = 16;
  const auto [loss1, par1] = train_snapshot(g, cfg, 1, GetParam());
  const auto [loss8, par8] = train_snapshot(g, cfg, 8, GetParam());
  ASSERT_EQ(loss1.size(), loss8.size());
  ASSERT_FALSE(loss1.empty());
  for (std::size_t i = 0; i < loss1.size(); ++i) {
    // Bitwise: the blocked kernels must not change any rounding.
    EXPECT_EQ(loss1[i], loss8[i]) << "frame " << i;
  }
  ASSERT_EQ(par1.size(), par8.size());
  for (std::size_t i = 0; i < par1.size(); ++i) {
    ASSERT_EQ(par1[i], par8[i]) << "param/grad elem " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Models, PipadThreadDeterminism,
                         ::testing::Values(ModelType::TGcn,
                                           ModelType::MpnnLstm),
                         [](const auto& info) {
                           std::string n = models::model_type_name(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ---------- Edge-weighted datasets ----------

TEST(Pipad, WeightedLossesMatchBaselinesAndDifferFromUnweighted) {
  const auto gw = weighted_tiny(32, 10, 2);
  gpusim::Gpu gpu_coo, gpu_ge, gpu_p;
  // PyGT exercises the weighted COO scatter path, PyGT-G the weighted
  // GE-SpMM forward/backward pair; PiPAD runs the stripe-weighted sliced
  // kernels. All three must agree on the math.
  baselines::BaselineTrainer coo(gpu_coo, gw, small_cfg(),
                                 baselines::Variant::PyGT);
  baselines::BaselineTrainer ge(gpu_ge, gw, small_cfg(),
                                baselines::Variant::PyGTG);
  PipadTrainer pip(gpu_p, gw, small_cfg());
  const auto rc = coo.train();
  const auto rg = ge.train();
  const auto rp = pip.train();
  ASSERT_EQ(rc.frame_loss.size(), rp.frame_loss.size());
  ASSERT_EQ(rg.frame_loss.size(), rp.frame_loss.size());
  for (std::size_t i = 0; i < rc.frame_loss.size(); ++i) {
    EXPECT_NEAR(rp.frame_loss[i], rc.frame_loss[i],
                2e-3f * (1.0f + std::abs(rc.frame_loss[i])))
        << "frame " << i;
    EXPECT_NEAR(rp.frame_loss[i], rg.frame_loss[i],
                2e-3f * (1.0f + std::abs(rg.frame_loss[i])))
        << "frame " << i;
  }

  // The weights must actually reach the numerics: the same topology without
  // them trains to different losses.
  const auto gu = graph::generate(testutil::tiny_config(32, 10, 2));
  gpusim::Gpu gpu_u;
  PipadTrainer unweighted(gpu_u, gu, small_cfg());
  const auto ru = unweighted.train();
  ASSERT_EQ(ru.frame_loss.size(), rp.frame_loss.size());
  bool any_diff = false;
  for (std::size_t i = 0; i < ru.frame_loss.size(); ++i) {
    any_diff = any_diff || ru.frame_loss[i] != rp.frame_loss[i];
  }
  EXPECT_TRUE(any_diff);
}

TEST(Pipad, WeightedLossesAndGradientsBitIdenticalAcrossThreadCounts) {
  const auto g = weighted_tiny(512, 10, 8);
  auto cfg = small_cfg();
  cfg.hidden_dim = 16;
  const auto [loss1, par1] = train_snapshot(g, cfg, 1, ModelType::TGcn);
  const auto [loss8, par8] = train_snapshot(g, cfg, 8, ModelType::TGcn);
  ASSERT_EQ(loss1.size(), loss8.size());
  ASSERT_FALSE(loss1.empty());
  for (std::size_t i = 0; i < loss1.size(); ++i) {
    EXPECT_EQ(loss1[i], loss8[i]) << "frame " << i;
  }
  ASSERT_EQ(par1.size(), par8.size());
  for (std::size_t i = 0; i < par1.size(); ++i) {
    ASSERT_EQ(par1[i], par8[i]) << "param/grad elem " << i;
  }
}

TEST(Pipad, BaselineLossesBitIdenticalAcrossThreadCounts) {
  // The PyGT family shares the pooled kernels; its losses must be equally
  // thread-count-invariant.
  const auto g = graph::generate(testutil::tiny_config(256, 8, 4));
  auto run = [&](int threads) {
    ComputePool::instance().configure(static_cast<std::size_t>(threads));
    gpusim::Gpu gpu;
    baselines::BaselineTrainer base(gpu, g, small_cfg(ModelType::TGcn),
                                    baselines::Variant::PyGTG);
    return base.train().frame_loss;
  };
  const auto l1 = run(1);
  const auto l8 = run(8);
  ComputePool::instance().configure(0);
  ASSERT_EQ(l1.size(), l8.size());
  for (std::size_t i = 0; i < l1.size(); ++i) {
    EXPECT_EQ(l1[i], l8[i]) << "frame " << i;
  }
}

TEST(Pipad, ComputeChargedToWorkerLanes) {
  // The measured numeric kernels must land on the timeline as compute:*
  // worker-lane ops once the workload clears the charge threshold.
  const auto g = graph::generate(testutil::tiny_config(512, 10, 8));
  gpusim::Gpu gpu;
  PipadOptions opts;
  opts.host_threads = 4;
  auto cfg = small_cfg(ModelType::TGcn);
  cfg.hidden_dim = 16;
  PipadTrainer pip(gpu, g, cfg, opts);
  pip.train();
  EXPECT_GT(gpu.timeline().busy_us_with_prefix("compute:"), 0.0);
  EXPECT_GT(gpu.timeline().busy_us_with_prefix("compute:gemm"), 0.0);
}

TEST(Pipad, TunerPicksFromConfiguredOptions) {
  const auto g = graph::generate(testutil::tiny_config(64, 16, 2));
  gpusim::Gpu gpu;
  auto cfg = small_cfg();
  cfg.frame_size = 8;
  PipadTrainer pip(gpu, g, cfg);
  pip.train();
  ASSERT_FALSE(pip.sper_decisions().empty());
  for (const auto& [start, s] : pip.sper_decisions()) {
    EXPECT_TRUE(s == 1 || s == 2 || s == 4 || s == 8) << "S_per=" << s;
  }
}

TEST(Pipad, TunerRespectsMemoryBound) {
  // §5.2: on memory-constrained devices the tuner must settle for lower
  // parallelism than it would pick with abundant memory — and never OOM.
  const auto g = graph::generate(testutil::tiny_config(1024, 12, 4));
  auto cfg = small_cfg(ModelType::TGcn);
  cfg.frame_size = 8;
  cfg.hidden_dim = 8;

  auto max_sper = [&](std::size_t device_bytes) {
    gpusim::SimConfig sc;
    sc.device_mem_bytes = device_bytes;
    gpusim::Gpu gpu(sc);
    PipadTrainer pip(gpu, g, cfg);
    const auto r = pip.train();  // Must not throw OutOfMemoryError.
    EXPECT_FALSE(r.frame_loss.empty());
    int max_s = 0;
    for (const auto& [start, s] : pip.sper_decisions()) {
      max_s = std::max(max_s, s);
    }
    return max_s;
  };

  const int roomy = max_sper(16ull << 30);
  const int tight = max_sper(1500 * 1024);
  EXPECT_LT(tight, roomy);
  EXPECT_GE(tight, 1);
}

TEST(Pipad, ForcedSperOverridesTuner) {
  const auto g = graph::generate(testutil::tiny_config(64, 16, 2));
  gpusim::Gpu gpu;
  auto cfg = small_cfg();
  cfg.frame_size = 8;
  PipadOptions opts;
  opts.forced_sper = 2;
  PipadTrainer pip(gpu, g, cfg, opts);
  pip.train();
  EXPECT_TRUE(pip.sper_decisions().empty());  // Tuner bypassed entirely.
}

TEST(Pipad, ReuseReducesTransferAndAggregation) {
  const auto g = graph::generate(testutil::tiny_config(64, 12, 2));
  auto run = [&](bool reuse) {
    gpusim::Gpu gpu;
    PipadOptions opts;
    opts.enable_reuse = reuse;
    PipadTrainer pip(gpu, g, small_cfg(ModelType::TGcn), opts);
    return pip.train();
  };
  const auto with = run(true);
  const auto without = run(false);
  EXPECT_LT(with.agg_stats.global_transactions,
            without.agg_stats.global_transactions);
  EXPECT_LT(with.total_us, without.total_us);
}

TEST(Pipad, CudaGraphBatchingReducesHostTime) {
  const auto g = graph::generate(testutil::tiny_config(48, 10, 2));
  auto run = [&](bool graph) {
    gpusim::Gpu gpu;
    PipadOptions opts;
    opts.enable_cuda_graph = graph;
    PipadTrainer pip(gpu, g, small_cfg(), opts);
    return pip.train();
  };
  const auto with = run(true);
  const auto without = run(false);
  EXPECT_LT(with.host_us, without.host_us);
  EXPECT_LE(with.total_us, without.total_us * 1.01);
}

TEST(Pipad, PipelineOverlapsTransferWithCompute) {
  const auto g = graph::generate(testutil::tiny_config(96, 12, 3));
  auto run = [&](bool pipeline) {
    gpusim::Gpu gpu;
    PipadOptions opts;
    opts.enable_pipeline = pipeline;
    PipadTrainer pip(gpu, g, small_cfg(), opts);
    return pip.train();
  };
  const auto with = run(true);
  const auto without = run(false);
  EXPECT_LE(with.total_us, without.total_us);
}

TEST(Pipad, LossKeepsDecreasingAcrossEpochs) {
  const auto g = graph::generate(testutil::tiny_config(48, 10, 2));
  gpusim::Gpu gpu;
  auto cfg = small_cfg();
  cfg.epochs = 6;
  cfg.lr = 5e-3f;
  PipadTrainer pip(gpu, g, cfg);
  const auto r = pip.train();
  ASSERT_GE(r.frame_loss.size(), 12u);
  EXPECT_LT(r.frame_loss.back(), r.frame_loss.front());
  for (float l : r.frame_loss) EXPECT_TRUE(std::isfinite(l));
}

// ---------- GPU reuse buffer ----------

TEST(ReuseBuffer, EvictsOldestWhenOverBudget) {
  gpusim::Device dev(1 << 20);
  runtime::GpuReuseBuffer buf(dev);
  buf.set_budget(300);
  EXPECT_TRUE(buf.insert(1, 100));
  EXPECT_TRUE(buf.insert(2, 100));
  EXPECT_TRUE(buf.insert(3, 100));
  EXPECT_TRUE(buf.insert(4, 100));  // Evicts snapshot 1.
  EXPECT_FALSE(buf.contains(1));
  EXPECT_TRUE(buf.contains(2) && buf.contains(3) && buf.contains(4));
  EXPECT_EQ(buf.used(), 300u);
  EXPECT_EQ(dev.used(), 300u);
}

TEST(ReuseBuffer, RejectsEntriesLargerThanBudget) {
  gpusim::Device dev(1 << 20);
  runtime::GpuReuseBuffer buf(dev);
  buf.set_budget(50);
  EXPECT_FALSE(buf.insert(1, 100));
  EXPECT_EQ(dev.used(), 0u);
}

TEST(ReuseBuffer, EvictBeforeDropsStaleEntriesAndReleasesMemory) {
  gpusim::Device dev(1 << 20);
  runtime::GpuReuseBuffer buf(dev);
  buf.set_budget(1000);
  for (int t = 0; t < 8; ++t) buf.insert(t, 50);
  buf.evict_before(5);
  EXPECT_EQ(buf.entries(), 3u);
  EXPECT_EQ(dev.used(), 150u);
}

// ---------- Offline analysis (Fig. 9 shapes) ----------

TEST(OfflineAnalysis, SpeedupGrowsWithOverlapRate) {
  // Workload sized so kernels clear the launch-latency floor.
  gpusim::CostModel cm((gpusim::SimConfig()));
  runtime::WorkloadShape w{200000, 2000000, 2, 6, 32, 4};
  const double lo = runtime::estimate_parallel_speedup(cm, w, 4, 0.2);
  const double hi = runtime::estimate_parallel_speedup(cm, w, 4, 0.9);
  EXPECT_GT(hi, lo);
  EXPECT_GT(hi, 1.0);
}

TEST(OfflineAnalysis, LargerSperWinsAtEqualOverlap) {
  // Fig. 9a: under the same OR, larger S_per is preferred.
  gpusim::CostModel cm((gpusim::SimConfig()));
  runtime::WorkloadShape w{200000, 2000000, 2, 6, 32, 4};
  const double s2 = runtime::estimate_parallel_speedup(cm, w, 2, 0.8);
  const double s4 = runtime::estimate_parallel_speedup(cm, w, 4, 0.8);
  const double s8 = runtime::estimate_parallel_speedup(cm, w, 8, 0.8);
  EXPECT_GT(s4, s2);
  EXPECT_GT(s8, s4);
}

TEST(OfflineAnalysis, ParallelNeverSlowerThanSequentialAtFullOverlap) {
  gpusim::CostModel cm((gpusim::SimConfig()));
  for (int f : {2, 8, 16, 64}) {
    runtime::WorkloadShape w{8000, 40000, f, 32, 32, 4};
    for (int s : {2, 4, 8}) {
      EXPECT_GE(runtime::estimate_parallel_speedup(cm, w, s, 1.0), 1.0)
          << "F=" << f << " S=" << s;
    }
  }
}

}  // namespace
}  // namespace pipad
