// Work-stealing executor tests: WorkDeque (Chase-Lev) semantics and
// concurrent exactly-once claiming, ThreadPool::run_blocks steal behavior,
// and the Qsbr reclamation domain (grace periods, offline exclusion,
// drain, multi-thread stress). These suites are the ones CI runs under
// TSan/ASan to race- and leak-check the pool internals; higher-level
// ComputePool region semantics live in common_test.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/compute_pool.hpp"
#include "common/error.hpp"
#include "common/qsbr.hpp"
#include "common/thread_pool.hpp"
#include "common/work_deque.hpp"

namespace pipad {
namespace {

// ------------------------------------------------------------------ WorkDeque

TEST(WorkDeque, OwnerPopIsLifo) {
  WorkDeque d(8);
  d.prefill(10);
  d.prefill(20);
  d.prefill(30);
  std::size_t v = 0;
  ASSERT_TRUE(d.pop(v));
  EXPECT_EQ(v, 30u);
  ASSERT_TRUE(d.pop(v));
  EXPECT_EQ(v, 20u);
  ASSERT_TRUE(d.pop(v));
  EXPECT_EQ(v, 10u);
  EXPECT_FALSE(d.pop(v));
  EXPECT_TRUE(d.empty());
}

TEST(WorkDeque, ThiefStealIsFifo) {
  WorkDeque d(8);
  d.prefill(1);
  d.prefill(2);
  d.prefill(3);
  std::size_t v = 0;
  ASSERT_TRUE(d.steal(v));
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(d.steal(v));
  EXPECT_EQ(v, 2u);
  ASSERT_TRUE(d.steal(v));
  EXPECT_EQ(v, 3u);
  EXPECT_FALSE(d.steal(v));
  EXPECT_TRUE(d.empty());
}

TEST(WorkDeque, PopAndStealMeetInTheMiddleWithoutOverlap) {
  WorkDeque d(8);
  for (std::size_t i = 1; i <= 4; ++i) d.prefill(i);
  std::size_t v = 0;
  ASSERT_TRUE(d.steal(v));
  EXPECT_EQ(v, 1u);  // Oldest.
  ASSERT_TRUE(d.pop(v));
  EXPECT_EQ(v, 4u);  // Newest.
  ASSERT_TRUE(d.steal(v));
  EXPECT_EQ(v, 2u);
  ASSERT_TRUE(d.pop(v));
  EXPECT_EQ(v, 3u);
  EXPECT_FALSE(d.pop(v));
  EXPECT_FALSE(d.steal(v));
}

TEST(WorkDeque, CapacityRoundsUpToPowerOfTwo) {
  WorkDeque d(5);  // Rounds up to 8.
  for (std::size_t i = 0; i < 8; ++i) d.prefill(i);
  EXPECT_THROW(d.prefill(8), Error);  // 9th item exceeds the fixed buffer.
  std::size_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(d.pop(v));
    EXPECT_EQ(v, 7 - i);
  }
}

// The exactly-once contract under contention: one owner popping LIFO races
// several thieves stealing FIFO over a fully preloaded deque; every item
// must be claimed by exactly one thread (no losses, no duplicates).
TEST(WorkDeque, ConcurrentPopAndStealClaimEveryItemExactlyOnce) {
  constexpr std::size_t kItems = 1 << 12;
  constexpr int kThieves = 3;
  WorkDeque d(kItems);
  for (std::size_t i = 0; i < kItems; ++i) d.prefill(i);

  std::vector<std::vector<std::size_t>> claimed(kThieves + 1);
  const auto thief = [&](int t) {
    std::size_t v = 0;
    for (;;) {
      if (d.steal(v)) {
        claimed[t].push_back(v);
      } else if (d.empty()) {
        return;  // steal() may fail spuriously under CAS contention;
                 // only an observed-empty deque ends the loop.
      }
    }
  };
  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back(thief, t);
  }
  // This thread plays the owner.
  std::size_t v = 0;
  for (;;) {
    if (d.pop(v)) {
      claimed[kThieves].push_back(v);
    } else if (d.empty()) {
      break;  // pop() only fails when empty or the last item was lost.
    }
  }
  for (auto& th : thieves) th.join();

  std::vector<int> count(kItems, 0);
  std::size_t total = 0;
  for (const auto& c : claimed) {
    total += c.size();
    for (std::size_t id : c) {
      ASSERT_LT(id, kItems);
      ++count[id];
    }
  }
  EXPECT_EQ(total, kItems);
  for (std::size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(count[i], 1) << "item " << i;
  }
}

// --------------------------------------------------------------- run_blocks

TEST(RunBlocks, ExecutesEveryBlockExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kBlocks = 257;  // Not a multiple of the pool width.
  std::vector<std::atomic<int>> hits(kBlocks);
  const auto stats = pool.run_blocks(kBlocks, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(stats.executed, kBlocks);
  for (std::size_t i = 0; i < kBlocks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "block " << i;
  }
}

TEST(RunBlocks, StealDisabledRunsEveryBlockOnItsHomeSlotOnly) {
  ThreadPool pool(4);
  constexpr std::size_t kBlocks = 32;
  std::vector<std::atomic<int>> hits(kBlocks);
  const auto stats = pool.run_blocks(
      kBlocks,
      [&](std::size_t i) {
        if (i == 0) {  // Skew the first block; nobody may rebalance it.
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        hits[i].fetch_add(1, std::memory_order_relaxed);
      },
      /*steal=*/false);
  EXPECT_EQ(stats.executed, kBlocks);
  EXPECT_EQ(stats.stolen, 0u);
  for (std::size_t i = 0; i < kBlocks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "block " << i;
  }
}

// Deterministic steal: with 2 workers and 4 blocks, slot 1 owns blocks
// {1, 3} and pops them in ascending order (the preload is descending so
// owners run cache-friendly ascending). Block 1 spins until block 3 has
// executed — the only way block 3 can run while slot 1's owner is pinned
// inside block 1 is for the other worker to steal it.
TEST(RunBlocks, IdleWorkerStealsFromABlockedSiblingsDeque) {
  ThreadPool pool(2);
  std::atomic<bool> block3_done{false};
  std::atomic<bool> timed_out{false};
  const auto stats = pool.run_blocks(4, [&](std::size_t i) {
    if (i == 3) {
      block3_done.store(true, std::memory_order_release);
    } else if (i == 1) {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (!block3_done.load(std::memory_order_acquire)) {
        if (std::chrono::steady_clock::now() > deadline) {
          timed_out.store(true, std::memory_order_relaxed);
          return;  // Fail via the flag below instead of hanging the suite.
        }
        std::this_thread::yield();
      }
    }
  });
  EXPECT_FALSE(timed_out.load()) << "block 3 was never stolen";
  EXPECT_EQ(stats.executed, 4u);
  EXPECT_GE(stats.stolen, 1u);
}

TEST(RunBlocks, SingleWorkerFallsBackToInlineWithoutSteals) {
  ThreadPool pool(1);
  std::vector<int> order;
  const auto stats = pool.run_blocks(
      5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(stats.executed, 5u);
  EXPECT_EQ(stats.stolen, 0u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RunBlocks, RethrowsFirstBlockExceptionAfterDrainingRegion) {
  ThreadPool pool(4);
  constexpr std::size_t kBlocks = 64;
  std::vector<std::atomic<int>> hits(kBlocks);
  EXPECT_THROW(pool.run_blocks(kBlocks,
                               [&](std::size_t i) {
                                 hits[i].fetch_add(
                                     1, std::memory_order_relaxed);
                                 if (i == 7) throw Error("block 7 failed");
                               }),
               Error);
  // The throwing block must not abort the region: every block still ran.
  for (std::size_t i = 0; i < kBlocks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "block " << i;
  }
}

TEST(RunBlocks, CalledFromOwnWorkerThrowsInsteadOfDeadlocking) {
  ThreadPool pool(2);
  auto fut = pool.submit([&pool] {
    pool.run_blocks(8, [](std::size_t) {});
  });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

// ---------------------------------------------------------- ComputePool knob

TEST(ComputePoolSteal, DisablingStealingZeroesTheRegionStealCounter) {
  auto& cp = ComputePool::instance();
  cp.configure(4);
  ComputePool::set_min_block_work(1);  // Force the parallel path.
  cp.discard_regions();

  cp.set_stealing(false);
  EXPECT_FALSE(cp.stealing());
  std::vector<double> out(4096, 0.0);
  cp.for_blocks("pool_test_static", out.size(), out.size() * 64,
                [&](std::size_t lo, std::size_t hi) {
                  for (std::size_t i = lo; i < hi; ++i) {
                    out[i] = static_cast<double>(i) * 0.5;
                  }
                });
  auto regions = cp.drain_regions();
  ASSERT_TRUE(regions.count("pool_test_static"));
  EXPECT_GT(regions["pool_test_static"].blocks, 1u);
  EXPECT_EQ(regions["pool_test_static"].steals, 0u);

  cp.set_stealing(true);
  EXPECT_TRUE(cp.stealing());
  ComputePool::set_min_block_work(0);  // Restore the calibrated floor.
}

// --------------------------------------------------------------------- Qsbr

TEST(Qsbr, GracePeriodWaitsForEveryOnlineThread) {
  Qsbr& q = Qsbr::instance();
  const Qsbr::Handle h1 = q.register_thread();
  const Qsbr::Handle h2 = q.register_thread();
  bool freed = false;
  q.retire([&freed] { freed = true; });
  EXPECT_FALSE(freed);  // Never freed synchronously with the retire.
  // h2 never announces quiescence, so no amount of progress by h1 may
  // advance the epoch far enough to free the object.
  for (int i = 0; i < 5; ++i) q.quiescent(h1);
  EXPECT_FALSE(freed);
  q.quiescent(h2);  // The laggard catches up: one grace period.
  q.quiescent(h1);
  q.quiescent(h2);  // Second grace period; e + 2 reached.
  q.quiescent(h1);
  EXPECT_TRUE(freed);
  q.unregister_thread(h1);
  q.unregister_thread(h2);
}

TEST(Qsbr, OfflineThreadIsExcludedFromGracePeriods) {
  Qsbr& q = Qsbr::instance();
  const Qsbr::Handle h1 = q.register_thread();
  const Qsbr::Handle h2 = q.register_thread();
  bool freed = false;
  q.retire([&freed] { freed = true; });
  for (int i = 0; i < 5; ++i) q.quiescent(h1);
  EXPECT_FALSE(freed);  // Blocked on h2.
  q.offline(h2);  // An idle worker must not stall reclamation.
  for (int i = 0; i < 5; ++i) q.quiescent(h1);
  EXPECT_TRUE(freed);
  q.online(h2);
  q.unregister_thread(h1);
  q.unregister_thread(h2);
}

TEST(Qsbr, UnregisterActsAsFinalQuiescentPoint) {
  Qsbr& q = Qsbr::instance();
  const Qsbr::Handle h1 = q.register_thread();
  const Qsbr::Handle h2 = q.register_thread();
  bool freed = false;
  q.retire([&freed] { freed = true; });
  for (int i = 0; i < 5; ++i) q.quiescent(h1);
  EXPECT_FALSE(freed);
  q.unregister_thread(h2);  // The departing laggard unblocks the epoch.
  for (int i = 0; i < 5; ++i) q.quiescent(h1);
  EXPECT_TRUE(freed);
  q.unregister_thread(h1);
}

TEST(Qsbr, DrainFreesEverythingWithNoRegisteredReaders) {
  Qsbr& q = Qsbr::instance();
  std::atomic<int> freed{0};
  constexpr int kObjects = 100;
  const std::uint64_t reclaimed_before = q.reclaimed();
  for (int i = 0; i < kObjects; ++i) {
    q.retire([&freed] { freed.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_LT(freed.load(), kObjects);  // At least the newest must pend.
  EXPECT_GT(q.pending(), 0u);
  q.drain();
  EXPECT_EQ(freed.load(), kObjects);
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_GE(q.reclaimed(), reclaimed_before + kObjects);
}

TEST(Qsbr, EpochAdvancesMonotonically) {
  Qsbr& q = Qsbr::instance();
  const Qsbr::Handle h = q.register_thread();
  const std::uint64_t e0 = q.epoch();
  q.retire([] {});  // pending > 0 lets quiescent() attempt advances.
  for (int i = 0; i < 3; ++i) q.quiescent(h);
  EXPECT_GT(q.epoch(), e0);
  q.unregister_thread(h);
  q.drain();
}

// Readers churn through register/quiescent/unregister while the main thread
// retires objects: every deleter must run exactly once, and only after the
// retire. Run under TSan/ASan in CI.
TEST(Qsbr, StressManyReadersNoLostOrDoubleFrees) {
  Qsbr& q = Qsbr::instance();
  constexpr int kReaders = 4;
  constexpr int kObjects = 2000;
  std::vector<std::atomic<int>> runs(kObjects);
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&q, &stop] {
      const Qsbr::Handle h = q.register_thread();
      while (!stop.load(std::memory_order_acquire)) {
        q.quiescent(h);
        std::this_thread::yield();
      }
      q.unregister_thread(h);
    });
  }
  for (int i = 0; i < kObjects; ++i) {
    q.retire([&runs, i] { runs[i].fetch_add(1, std::memory_order_relaxed); });
    if (i % 64 == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();
  q.drain();

  for (int i = 0; i < kObjects; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "object " << i;
  }
  EXPECT_EQ(q.pending(), 0u);
}

// Pool workers announce quiescence between tasks and go offline while idle,
// so a trainer-thread retire is freed by worker progress alone — the
// end-to-end wiring the streaming prep pipeline relies on.
TEST(Qsbr, PoolWorkersDriveReclamationOfTrainerRetires) {
  Qsbr& q = Qsbr::instance();
  q.drain();  // Start from an empty queue.
  ThreadPool pool(2);
  std::atomic<bool> freed{false};
  q.retire([&freed] { freed.store(true, std::memory_order_release); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!freed.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline) {
    // Each task ends with a quiescent announcement on its worker; idle
    // workers sit offline, so two small batches are enough to advance two
    // epochs no matter how the tasks interleave.
    for (auto& f : pool.map(4, [](std::size_t) {})) f.get();
  }
  EXPECT_TRUE(freed.load());
}

}  // namespace
}  // namespace pipad
