// Ablation: switch off each PiPAD mechanism in isolation (pipeline overlap,
// CUDA-graph batching, inter-frame reuse, locality-optimized weight reuse,
// and the tuner) and measure the end-to-end cost — quantifying each design
// choice called out in DESIGN.md.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace pipad;
  auto flags = bench::Flags::parse(argc, argv);
  if (flags.datasets.empty()) flags.datasets = {"hepth", "epinions"};
  bench::DatasetCache cache(flags);

  struct Config {
    const char* name;
    runtime::PipadOptions opts;
  };
  std::vector<Config> configs;
  configs.push_back({"full PiPAD", {}});
  {
    runtime::PipadOptions o;
    o.enable_pipeline = false;
    configs.push_back({"- pipeline", o});
  }
  {
    runtime::PipadOptions o;
    o.enable_cuda_graph = false;
    configs.push_back({"- CUDA graph", o});
  }
  {
    runtime::PipadOptions o;
    o.enable_reuse = false;
    configs.push_back({"- inter-frame reuse", o});
  }
  {
    runtime::PipadOptions o;
    o.enable_weight_reuse = false;
    configs.push_back({"- weight reuse", o});
  }
  {
    runtime::PipadOptions o;
    o.forced_sper = 1;
    configs.push_back({"- parallelism (S_per=1)", o});
  }

  for (auto model : bench::all_models()) {
    std::printf("--- %s ---\n", models::model_type_name(model));
    std::printf("%-26s", "Configuration");
    for (const auto& cfg : flags.configs()) {
      std::printf(" %14s", cfg.name.c_str());
    }
    std::printf("\n");
    std::vector<double> full_us;
    for (const auto& c : configs) {
      std::printf("%-26s", c.name);
      int col = 0;
      for (const auto& dcfg : flags.configs()) {
        const auto& g = cache.get(dcfg);
        const auto r = bench::run_method(
            g, bench::Method::PiPAD, bench::train_config(flags, model),
            c.opts);
        if (c.name == std::string("full PiPAD")) {
          full_us.push_back(r.total_us);
          std::printf(" %11.0f us", r.total_us);
        } else {
          std::printf(" %10.2fx sl", r.total_us / full_us[col]);
        }
        ++col;
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("(x sl = slowdown relative to full PiPAD)\n");
  return 0;
}
