// Figure 4: breakdown of GPU computation time into GNN, RNN, and other
// kernels under the PyGT baseline. The GNN (aggregation-heavy) share
// dominates on most datasets; MPNN-LSTM's RNN share grows with vertex
// count (it runs LSTMs over every node).
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace pipad;
  const auto flags = bench::Flags::parse(argc, argv);
  bench::DatasetCache cache(flags);

  std::printf("Figure 4: GPU computation-time breakdown (PyGT)\n\n");
  std::printf("%-11s %-18s %8s %8s %8s\n", "Model", "Dataset", "GNN%",
              "RNN%", "other%");
  for (auto model : bench::all_models()) {
    for (const auto& cfg : flags.configs()) {
      const auto& g = cache.get(cfg);
      const auto r = bench::run_method(g, bench::Method::PyGT,
                                       bench::train_config(flags, model));
      std::printf("%-11s %-18s %7.1f%% %7.1f%% %7.1f%%\n",
                  models::model_type_name(model), cfg.name.c_str(),
                  100.0 * r.gnn_us / r.compute_us,
                  100.0 * r.rnn_us / r.compute_us,
                  100.0 * r.other_us / r.compute_us);
    }
  }
  return 0;
}
