// Figure 3: latency breakdown (data transfer vs compute vs host) and SM
// utilization of DGNN training under the PyGT baseline.
//
// Paper headline: transfers average ~39 % of end-to-end time and SM
// utilization stays below ~41 % on average.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace pipad;
  const auto flags = bench::Flags::parse(argc, argv);
  bench::DatasetCache cache(flags);

  std::printf("Figure 3: PyGT latency breakdown and SM utilization\n\n");
  std::printf("%-11s %-18s %9s %9s %9s %8s\n", "Model", "Dataset",
              "transfer%", "compute%", "other%", "SM-util%");

  std::vector<double> transfer_shares, utils;
  for (auto model : bench::all_models()) {
    for (const auto& cfg : flags.configs()) {
      const auto& g = cache.get(cfg);
      const auto r = bench::run_method(g, bench::Method::PyGT,
                                       bench::train_config(flags, model));
      // "Other" = wall time with neither transfer nor compute busy.
      const double other =
          std::max(0.0, r.total_us - r.transfer_us - r.compute_us);
      std::printf("%-11s %-18s %8.1f%% %8.1f%% %8.1f%% %7.1f%%\n",
                  models::model_type_name(model), cfg.name.c_str(),
                  100.0 * r.transfer_us / r.total_us,
                  100.0 * r.compute_us / r.total_us,
                  100.0 * other / r.total_us, 100.0 * r.sm_utilization);
      transfer_shares.push_back(r.transfer_us / r.total_us);
      utils.push_back(r.sm_utilization);
    }
  }
  std::printf(
      "\nmean transfer share %.1f%% (paper: 38.7%%), "
      "mean SM utilization %.1f%% (paper: <41.2%%)\n",
      100.0 * mean(transfer_shares), 100.0 * mean(utils));
  return 0;
}
