// google-benchmark microbenchmarks of the real (host-executed) kernel
// implementations — these measure actual CPU wall time of the library's
// numeric code paths, complementing the simulated-time figures.
#include <benchmark/benchmark.h>

#include "graph/generator.hpp"
#include "kernels/aggregate.hpp"
#include "kernels/update.hpp"
#include "sliced/partition.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace pipad;

const graph::DTDG& test_graph() {
  static const graph::DTDG g = [] {
    graph::DatasetConfig cfg;
    cfg.name = "bench";
    cfg.num_nodes = 4000;
    cfg.raw_events = 40000;
    cfg.num_snapshots = 8;
    cfg.feat_dim = 16;
    cfg.edge_life = 5.0;
    return graph::generate(cfg);
  }();
  return g;
}

void BM_AggCoo(benchmark::State& state) {
  const auto& g = test_graph();
  const int f = static_cast<int>(state.range(0));
  Rng rng(1);
  const Tensor x = Tensor::randn(g.num_nodes, f, rng);
  Tensor out(g.num_nodes, f);
  const auto coo = graph::coo_from_csr(g.snapshots[0].adj);
  for (auto _ : state) {
    kernels::agg_coo(coo, x, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * coo.nnz());
}
BENCHMARK(BM_AggCoo)->Arg(2)->Arg(16)->Arg(64);

void BM_AggSliced(benchmark::State& state) {
  const auto& g = test_graph();
  const int f = static_cast<int>(state.range(0));
  Rng rng(2);
  const Tensor x = Tensor::randn(g.num_nodes, f, rng);
  Tensor out(g.num_nodes, f);
  const auto s = sliced::slice(g.snapshots[0].adj);
  for (auto _ : state) {
    kernels::agg_sliced(s, x, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * s.nnz());
}
BENCHMARK(BM_AggSliced)->Arg(2)->Arg(16)->Arg(64);

void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  const Tensor a = Tensor::randn(n, 32, rng);
  const Tensor b = Tensor::randn(32, 32, rng);
  Tensor c(n, 32);
  for (auto _ : state) {
    ops::gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2ull * n * 32 * 32);
}
BENCHMARK(BM_Gemm)->Arg(1000)->Arg(8000);

void BM_SliceCsr(benchmark::State& state) {
  const auto& g = test_graph();
  for (auto _ : state) {
    auto s = sliced::slice(g.snapshots[0].adj);
    benchmark::DoNotOptimize(s.col_idx.data());
  }
}
BENCHMARK(BM_SliceCsr);

void BM_OverlapExtraction(benchmark::State& state) {
  const auto& g = test_graph();
  const int count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto p = sliced::build_partition(g, 0, count);
    benchmark::DoNotOptimize(p.overlap.col_idx.data());
  }
}
BENCHMARK(BM_OverlapExtraction)->Arg(2)->Arg(4)->Arg(8);

void BM_CoalesceFeatures(benchmark::State& state) {
  const auto& g = test_graph();
  std::vector<const Tensor*> feats;
  for (int i = 0; i < 4; ++i) feats.push_back(&g.snapshots[i].features);
  for (auto _ : state) {
    auto coal = sliced::coalesce_features(feats);
    benchmark::DoNotOptimize(coal.data());
  }
}
BENCHMARK(BM_CoalesceFeatures);

}  // namespace

BENCHMARK_MAIN();
