// Table 2: nvidia-smi-style GPU utilization (%) per method/model/dataset.
// The metric counts memory-copy engines as "active" (§5.2), which is why
// PyGT-A / PyGT-R can look better than faster methods that simply finish
// their device work sooner — the paper calls this counter-intuitive effect
// out explicitly.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace pipad;
  const auto flags = bench::Flags::parse(argc, argv);
  bench::DatasetCache cache(flags);

  std::printf("Table 2: GPU utilization (%%) — device-active fraction\n\n");
  for (auto model : bench::all_models()) {
    std::printf("--- %s ---\n", models::model_type_name(model));
    std::printf("%-8s", "Method");
    for (const auto& cfg : flags.configs()) {
      std::printf(" %6s", bench::short_name(cfg.name).c_str());
    }
    std::printf("\n");
    for (auto m : bench::all_methods()) {
      std::printf("%-8s", bench::method_name(m));
      for (const auto& cfg : flags.configs()) {
        const auto& g = cache.get(cfg);
        const auto r =
            bench::run_method(g, m, bench::train_config(flags, model));
        std::printf(" %5.1f%%", 100.0 * r.device_active);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf(
      "Shape check (Table 2): large datasets run high (>70%%), small ones "
      "low (CPU-side\nlatency dominates); async variants look best because "
      "copies count as activity.\n");
  return 0;
}
