// contention_pool: the work-stealing region executor against static blocks.
//
// Synthetic row workload, two cost profiles:
//   uniform — every row costs the same (stealing should be a wash);
//   zipf    — block b's rows cost ~ 1/(b+1), so the leading blocks dwarf
//             the tail the way skewed row distributions do in the real
//             aggregation kernels (the imbalance `pipad analyze` flags).
// Each profile runs with stealing on and off through the same
// ComputePool::for_blocks region (identical block layout — the toggle only
// moves execution, never the partitioning), timed as min-of-N wall clock.
//
// The binary is its own gate: with >= 2 workers the zipf profile must run
// faster with stealing than without, and must actually steal, or it exits
// nonzero — CI runs it before diffing BENCH_pool.json so a regression in
// the executor fails fast even when the timings stay inside the bench_diff
// threshold. Flags are the shared bench set; only --threads, --epochs
// (measurement repetitions) and --json are meaningful here.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"

namespace {

using pipad::ComputePool;

constexpr std::size_t kRows = 1u << 15;
/// Per-row work repetitions for the uniform profile; zipf redistributes the
/// same total across blocks as reps ~ kUniformReps * kBlocks / (b + 1)
/// (normalized by the harmonic sum so both profiles cost about the same).
constexpr std::size_t kUniformReps = 160;

struct Profile {
  const char* name;
  std::vector<std::size_t> reps;  ///< Per-row iteration counts.
};

Profile make_uniform() {
  return Profile{"uniform", std::vector<std::size_t>(kRows, kUniformReps)};
}

Profile make_zipf() {
  const std::size_t blocks = ComputePool::kMaxBlocks;
  const std::size_t per_block = kRows / blocks;
  double harmonic = 0.0;
  for (std::size_t b = 0; b < blocks; ++b) harmonic += 1.0 / (b + 1);
  const double scale =
      static_cast<double>(kUniformReps) * blocks / harmonic;
  Profile p{"zipf", std::vector<std::size_t>(kRows)};
  for (std::size_t i = 0; i < kRows; ++i) {
    const std::size_t b = std::min(i / per_block, blocks - 1);
    p.reps[i] = std::max<std::size_t>(1, scale / (b + 1));
  }
  return p;
}

struct RunResult {
  double min_us = 0.0;
  std::size_t steals = 0;
  std::size_t blocks = 0;
};

/// Time the region `iters` times (plus one untimed warmup) and keep the
/// fastest run; steal/block counters come from the drained region stats.
RunResult run_profile(const Profile& p, bool steal, int iters,
                      std::vector<float>& out) {
  auto& cp = ComputePool::instance();
  cp.set_stealing(steal);
  cp.discard_regions();
  RunResult r;
  r.min_us = 1e30;
  const auto region = [&] {
    cp.for_blocks("contention", kRows, kRows * kUniformReps,
                  [&](std::size_t lo, std::size_t hi) {
                    for (std::size_t i = lo; i < hi; ++i) {
                      float acc = static_cast<float>(i) * 0.5f + 1.0f;
                      const std::size_t reps = p.reps[i];
                      for (std::size_t k = 0; k < reps; ++k) {
                        acc = acc * 0.999f + 0.001f * static_cast<float>(k);
                      }
                      out[i] = acc;
                    }
                  });
  };
  region();  // Warmup (page faults, pool wakeup).
  cp.discard_regions();
  for (int it = 0; it < iters; ++it) {
    const auto t0 = std::chrono::steady_clock::now();
    region();
    const auto t1 = std::chrono::steady_clock::now();
    r.min_us = std::min(
        r.min_us,
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  auto regions = cp.drain_regions();
  const auto it = regions.find("contention");
  if (it != regions.end()) {
    r.steals = it->second.steals;
    r.blocks = it->second.blocks;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pipad;
  const auto flags = bench::Flags::parse(argc, argv);
  ComputePool::instance().configure(
      flags.job.threads > 0 ? static_cast<std::size_t>(flags.job.threads) : 0);
  // Pin the work floor so the block layout (kMaxBlocks blocks) does not
  // depend on the machine's measured calibration.
  ComputePool::set_min_block_work(ComputePool::kMinBlockWorkFloor);
  const std::size_t threads = ComputePool::instance().threads();
  const int iters = std::max(flags.job.epochs, 5);

  std::printf("contention_pool: %zu rows, %zu blocks, %zu workers, "
              "min of %d runs\n\n",
              static_cast<std::size_t>(kRows), ComputePool::kMaxBlocks,
              threads, iters);
  std::printf("%-10s %-8s %12s %8s %8s\n", "profile", "method", "min_us",
              "steals", "blocks");

  bench::JsonReport report("contention_pool", flags);
  std::vector<float> out(kRows, 0.0f);
  std::vector<float> reference;
  double zipf_steal_us = 0.0, zipf_static_us = 0.0;
  std::size_t zipf_steals = 0;
  for (const auto& profile : {make_uniform(), make_zipf()}) {
    reference.clear();
    for (const bool steal : {true, false}) {
      const auto r = run_profile(profile, steal, iters, out);
      std::printf("%-10s %-8s %12.1f %8zu %8zu\n", profile.name,
                  steal ? "steal" : "static", r.min_us, r.steals, r.blocks);
      // The toggle must never change the numbers the blocks produce.
      if (reference.empty()) {
        reference = out;
      } else if (reference != out) {
        std::fprintf(stderr,
                     "FAIL: %s outputs differ between steal and static\n",
                     profile.name);
        return 1;
      }
      if (std::string(profile.name) == "zipf") {
        (steal ? zipf_steal_us : zipf_static_us) = r.min_us;
        if (steal) zipf_steals = r.steals;
      }
      models::TrainResult tr;
      tr.total_us = r.min_us;
      tr.compute_us = r.min_us;
      tr.steals = r.steals;
      report.add(profile.name, "pool", steal ? "steal" : "static", tr);
    }
  }
  ComputePool::set_min_block_work(0);  // Restore the calibrated floor.
  ComputePool::instance().set_stealing(true);

  if (!report.write_if_requested()) return 1;

  if (threads >= 2) {
    // The point of the executor: skewed blocks must not serialize on their
    // home slots, so the zipf region must actually rebalance.
    if (zipf_steals == 0) {
      std::fprintf(stderr,
                   "FAIL: zipf profile executed without a single steal\n");
      return 1;
    }
  }
  if (threads >= 2 && std::thread::hardware_concurrency() >= 2) {
    // Wall-clock superiority needs real cores: on a single-CPU machine the
    // OS serializes the workers and steal == static by construction, so
    // only the steals > 0 gate above applies there.
    if (zipf_steal_us >= zipf_static_us) {
      std::fprintf(stderr,
                   "FAIL: stealing (%.1f us) did not beat static blocks "
                   "(%.1f us) on the zipf profile\n",
                   zipf_steal_us, zipf_static_us);
      return 1;
    }
    std::printf("\nzipf speedup from stealing: %.2fx\n",
                zipf_static_us / zipf_steal_us);
  } else {
    std::printf("\n(%s: zipf steal-vs-static timing gate skipped)\n",
                threads < 2 ? "single worker" : "single hardware CPU");
  }
  return 0;
}
