// Figure 9: offline analysis of the parallel GNN guiding the dynamic tuner.
//  (a) speedup of S_per in {2,4,8} over one-snapshot execution as the group
//      topology-overlap rate (OR) varies;
//  (b) normalized speedup as the feature dimension varies (OR fixed high).
// Expected shape: larger S_per preferred at equal OR/dimension; speedup
// grows with OR; high speedups persist across dimensions (>= 5.2x in the
// paper's testbed regime for the small datasets).
#include <cstdio>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "pipad/offline_analysis.hpp"
#include "sliced/partition.hpp"

int main(int argc, char** argv) {
  using namespace pipad;
  const auto flags = bench::Flags::parse(argc, argv);
  gpusim::CostModel cm((gpusim::SimConfig()));

  // Workload shaped like the paper's scaled evaluation graphs.
  runtime::WorkloadShape w;
  w.num_nodes = 200000;
  w.nnz_per_snapshot = 3000000;
  w.feat_dim = 2;
  w.hidden_dim = 6;

  std::printf("Figure 9(a): parallel-GNN speedup vs overlap rate (F=%d)\n\n",
              w.feat_dim);
  std::printf("%8s %10s %10s %10s\n", "OR", "S_per=2", "S_per=4", "S_per=8");
  for (double orr : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    std::printf("%7.0f%% %9.2fx %9.2fx %9.2fx\n", orr * 100,
                runtime::estimate_parallel_speedup(cm, w, 2, orr),
                runtime::estimate_parallel_speedup(cm, w, 4, orr),
                runtime::estimate_parallel_speedup(cm, w, 8, orr));
  }

  std::printf(
      "\nFigure 9(b): parallel-GNN speedup vs feature dimension (OR=85%%)\n\n");
  std::printf("%8s %10s %10s %10s\n", "F", "S_per=2", "S_per=4", "S_per=8");
  for (int f : {2, 4, 8, 16, 32, 64, 128}) {
    runtime::WorkloadShape wf = w;
    wf.feat_dim = f;
    wf.hidden_dim = f <= 2 ? 6 : 32;
    std::printf("%8d %9.2fx %9.2fx %9.2fx\n", f,
                runtime::estimate_parallel_speedup(cm, wf, 2, 0.85),
                runtime::estimate_parallel_speedup(cm, wf, 4, 0.85),
                runtime::estimate_parallel_speedup(cm, wf, 8, 0.85));
  }
  // Real-thread complement to the analytic tables: measure the wall-clock
  // of one pool-parallel partition build (the HostLane's §4.3 prep job) as
  // the thread count grows. This replaces the former assumed
  // `host_prep_parallelism` divisor with an actual measurement.
  std::printf(
      "\nMeasured: pool-parallel build_partition wall-clock vs threads\n\n");
  graph::DatasetConfig dcfg;
  dcfg.name = "synthetic";
  dcfg.num_nodes = 4000;
  dcfg.raw_events = 120000;
  dcfg.num_snapshots = 8;
  dcfg.feat_dim = 2;
  dcfg.edge_life = 6.0;
  const auto g = graph::generate(dcfg);
  double base_us = 0.0;
  std::printf("%8s %12s %10s\n", "threads", "build (us)", "speedup");
  for (std::size_t t : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(t);
    double best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      Timer timer;
      (void)sliced::build_partition(g, 0, g.num_snapshots(),
                                    sliced::kDefaultSliceBound, &pool);
      best = std::min(best, timer.elapsed_us());
    }
    if (t == 1) base_us = best;
    std::printf("%8zu %12.0f %9.2fx\n", t, best, base_us / best);
  }
  (void)flags;
  std::printf(
      "\nShape check: larger S_per wins at equal OR/F; speedup rises with "
      "OR (Fig. 9a/9b);\nthe measured build scales with real threads until "
      "the per-member tasks run out.\n");
  return 0;
}
