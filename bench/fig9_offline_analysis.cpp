// Figure 9: offline analysis of the parallel GNN guiding the dynamic tuner.
//  (a) speedup of S_per in {2,4,8} over one-snapshot execution as the group
//      topology-overlap rate (OR) varies;
//  (b) normalized speedup as the feature dimension varies (OR fixed high).
// Expected shape: larger S_per preferred at equal OR/dimension; speedup
// grows with OR; high speedups persist across dimensions (>= 5.2x in the
// paper's testbed regime for the small datasets).
#include <cstdio>

#include "bench_util.hpp"
#include "pipad/offline_analysis.hpp"

int main(int argc, char** argv) {
  using namespace pipad;
  (void)bench::Flags::parse(argc, argv);
  gpusim::CostModel cm((gpusim::SimConfig()));

  // Workload shaped like the paper's scaled evaluation graphs.
  runtime::WorkloadShape w;
  w.num_nodes = 200000;
  w.nnz_per_snapshot = 3000000;
  w.feat_dim = 2;
  w.hidden_dim = 6;

  std::printf("Figure 9(a): parallel-GNN speedup vs overlap rate (F=%d)\n\n",
              w.feat_dim);
  std::printf("%8s %10s %10s %10s\n", "OR", "S_per=2", "S_per=4", "S_per=8");
  for (double orr : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    std::printf("%7.0f%% %9.2fx %9.2fx %9.2fx\n", orr * 100,
                runtime::estimate_parallel_speedup(cm, w, 2, orr),
                runtime::estimate_parallel_speedup(cm, w, 4, orr),
                runtime::estimate_parallel_speedup(cm, w, 8, orr));
  }

  std::printf(
      "\nFigure 9(b): parallel-GNN speedup vs feature dimension (OR=85%%)\n\n");
  std::printf("%8s %10s %10s %10s\n", "F", "S_per=2", "S_per=4", "S_per=8");
  for (int f : {2, 4, 8, 16, 32, 64, 128}) {
    runtime::WorkloadShape wf = w;
    wf.feat_dim = f;
    wf.hidden_dim = f <= 2 ? 6 : 32;
    std::printf("%8d %9.2fx %9.2fx %9.2fx\n", f,
                runtime::estimate_parallel_speedup(cm, wf, 2, 0.85),
                runtime::estimate_parallel_speedup(cm, wf, 4, 0.85),
                runtime::estimate_parallel_speedup(cm, wf, 8, 0.85));
  }
  std::printf(
      "\nShape check: larger S_per wins at equal OR/F; speedup rises with "
      "OR (Fig. 9a/9b).\n");
  return 0;
}
