// Ablation: thread-aware slice-coalescing width (coalesce_num, §4.2 caps it
// at 4 so a thread group's access stays within one 32-byte transaction).
#include <cstdio>

#include "bench_util.hpp"
#include "kernels/aggregate.hpp"
#include "sliced/sliced_csr.hpp"

int main(int argc, char** argv) {
  using namespace pipad;
  const auto flags = bench::Flags::parse(argc, argv);
  gpusim::CostModel cm((gpusim::SimConfig()));

  auto cfg = graph::dataset_by_name("epinions", flags.job.scale_large,
                                    flags.job.scale_small);
  cfg.num_snapshots = 1;
  const auto g = graph::generate(cfg);
  const auto s = sliced::slice(g.snapshots[0].adj, 32);

  std::printf(
      "Ablation: coalesce_num sweep (aggregation kernel, %zu nnz)\n\n",
      s.nnz());
  std::printf("%4s %6s %10s %14s %14s %10s\n", "F", "cn", "warp-eff",
              "#requests", "#txns", "sim us");
  Rng rng(1);
  for (int f : {2, 4, 8}) {
    const Tensor x = Tensor::randn(g.num_nodes, f, rng);
    for (int cn : {1, 2, 4, 8}) {
      Tensor out(g.num_nodes, f);
      const auto st = kernels::agg_sliced(s, x, out, cn);
      std::printf("%4d %6d %9.1f%% %14s %14s %10.1f\n", f,
                  kernels::effective_coalesce_num(f, cn),
                  100.0 * st.warp_efficiency(),
                  with_commas(st.global_requests).c_str(),
                  with_commas(st.global_transactions).c_str(),
                  cm.kernel_us(st));
    }
  }
  std::printf(
      "\ncn is clamped so cn*F <= 32; wider groups raise warp efficiency "
      "and amortize\nper-request overhead for narrow features.\n");
  return 0;
}
