// Ablation: slice nnz upper bound (§4.1 fixes 32) — space overhead vs load
// balance trade-off, plus the end-to-end effect.
#include <cstdio>

#include "bench_util.hpp"
#include "sliced/sliced_csr.hpp"

int main(int argc, char** argv) {
  using namespace pipad;
  auto flags = bench::Flags::parse(argc, argv);
  if (flags.datasets.empty()) flags.datasets = {"epinions", "hepth"};
  bench::DatasetCache cache(flags);

  std::printf(
      "Ablation: slice bound — space vs balance vs end-to-end time\n\n");
  std::printf("%-18s %6s %12s %10s %12s\n", "Dataset", "bound",
              "topo bytes", "imbalance", "e2e us");
  for (const auto& dcfg : flags.configs()) {
    const auto& g = cache.get(dcfg);
    const auto& adj = g.snapshots[g.num_snapshots() / 2].adj;
    for (int bound : {4, 8, 16, 32, 64, 128}) {
      const auto s = sliced::slice(adj, bound);
      const auto lb = sliced::sliced_load_balance(s, 64);
      runtime::PipadOptions o;
      o.slice_bound = bound;
      const auto r = bench::run_method(
          g, bench::Method::PiPAD,
          bench::train_config(flags, models::ModelType::EvolveGcn), o);
      std::printf("%-18s %6d %12s %10.3f %12.0f\n", dcfg.name.c_str(), bound,
                  human_bytes(s.transfer_bytes()).c_str(), lb.imbalance(),
                  r.total_us);
    }
  }
  std::printf(
      "\nSmaller bounds balance better but cost more metadata; 32 (the "
      "paper's choice)\nsits at the knee.\n");
  return 0;
}
