// bench_diff: compare two bench-to-JSON records and flag perf regressions.
//
//   bench_diff BASELINE.json FRESH.json [--threshold=0.15] [--metric=epoch_us]
//              [--summary=FILE]
//
// --summary=FILE appends the comparison as a GitHub-flavored markdown table
// (CI points it at $GITHUB_STEP_SUMMARY so the perf gate is readable on the
// run page without downloading artifacts).
//
// Both files must be JsonReport documents (see bench_util.hpp): a "records"
// array of flat objects keyed by (dataset, model, method). For every record
// present in the baseline, the fresh value of --metric may exceed the
// baseline by at most --threshold (fractional; 0.15 = +15%). Records missing
// from the fresh file also fail; records new in the fresh file are reported
// but pass (the trajectory can grow). Exit codes: 0 ok, 1 regression or
// missing record, 2 usage/parse error — so CI can gate on it.
//
// The parser handles exactly the subset of JSON our writer emits (flat
// string/number fields, no nesting inside records, no escapes); it rejects
// anything it cannot understand rather than guessing.
#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Record {
  std::map<std::string, std::string> strings;
  std::map<std::string, double> numbers;
};

struct Document {
  std::vector<Record> records;
};

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "bench_diff: %s\n", msg.c_str());
  std::exit(2);
}

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

std::string parse_string(const std::string& s, std::size_t& i) {
  if (i >= s.size() || s[i] != '"') die("expected '\"' at offset " +
                                        std::to_string(i));
  const std::size_t end = s.find('"', i + 1);
  if (end == std::string::npos) die("unterminated string");
  std::string out = s.substr(i + 1, end - i - 1);
  i = end + 1;
  return out;
}

double parse_number(const std::string& s, std::size_t& i) {
  char* endp = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str() + i, &endp);
  if (endp == s.c_str() + i || errno == ERANGE) {
    die("malformed number at offset " + std::to_string(i));
  }
  i = static_cast<std::size_t>(endp - s.c_str());
  return v;
}

/// Parse one flat {"key": value, ...} object starting at s[i] == '{'.
Record parse_record(const std::string& s, std::size_t& i) {
  Record r;
  ++i;  // '{'
  for (;;) {
    skip_ws(s, i);
    if (i < s.size() && s[i] == '}') {
      ++i;
      return r;
    }
    const std::string key = parse_string(s, i);
    skip_ws(s, i);
    if (i >= s.size() || s[i] != ':') die("expected ':' after \"" + key + '"');
    ++i;
    skip_ws(s, i);
    if (i < s.size() && s[i] == '"') {
      r.strings[key] = parse_string(s, i);
    } else {
      r.numbers[key] = parse_number(s, i);
    }
    skip_ws(s, i);
    if (i < s.size() && s[i] == ',') ++i;
  }
}

/// Highest record schema_version this tool understands. Records without
/// the field (pre-versioning baselines) and records at or below this
/// version are accepted; newer records fail loudly instead of being
/// compared under stale semantics.
constexpr int kMaxRecordSchemaVersion = 1;

void check_schema(const std::string& path, const Record& r) {
  const auto it = r.numbers.find("schema_version");
  if (it == r.numbers.end()) return;  // Legacy record: fine.
  if (it->second > kMaxRecordSchemaVersion) {
    die(path + ": record schema_version " +
        std::to_string(it->second) +
        " is newer than this bench_diff supports (" +
        std::to_string(kMaxRecordSchemaVersion) + ")");
  }
}

Document parse_document(const std::string& path) {
  std::ifstream is(path);
  if (!is) die("cannot open " + path);
  std::stringstream buf;
  buf << is.rdbuf();
  const std::string s = buf.str();

  const std::size_t key = s.find("\"records\"");
  if (key == std::string::npos) die(path + ": no \"records\" array");
  std::size_t i = s.find('[', key);
  if (i == std::string::npos) die(path + ": no '[' after \"records\"");
  ++i;
  Document doc;
  for (;;) {
    skip_ws(s, i);
    if (i >= s.size()) die(path + ": unterminated records array");
    if (s[i] == ']') break;
    if (s[i] != '{') die(path + ": expected record object");
    doc.records.push_back(parse_record(s, i));
    check_schema(path, doc.records.back());
    skip_ws(s, i);
    if (i < s.size() && s[i] == ',') ++i;
  }
  return doc;
}

std::string record_key(const Record& r) {
  const auto get = [&](const char* k) {
    const auto it = r.strings.find(k);
    return it == r.strings.end() ? std::string("?") : it->second;
  };
  return get("dataset") + " | " + get("model") + " | " + get("method");
}

void usage_and_exit(const char* prog) {
  std::fprintf(stderr,
               "usage: %s BASELINE.json FRESH.json [--threshold=F]"
               " [--metric=NAME] [--min-delta-us=N]\n"
               "       [--summary=FILE]\n"
               "  --threshold=F      allowed fractional increase"
               " (default 0.15)\n"
               "  --metric=NAME      numeric record field to compare"
               " (default epoch_us)\n"
               "  --min-delta-us=N   ignore regressions whose absolute"
               " increase is below N\n"
               "                     (floor for noisy tiny records;"
               " default 0)\n"
               "  --summary=FILE     append the comparison as a markdown"
               " table (for\n"
               "                     $GITHUB_STEP_SUMMARY)\n",
               prog);
  std::exit(2);
}

/// Markdown-escape a record key ('|' delimits table cells).
std::string md_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '|') out += "\\|";
    else out.push_back(c);
  }
  return out;
}

/// printf into a std::string, sized dynamically — record keys embed
/// user-controlled dataset file stems, and a truncated row would corrupt
/// the markdown table.
std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
  if (needed > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, fresh_path;
  double threshold = 0.15;
  double min_delta_us = 0.0;
  std::string metric = "epoch_us";
  std::string summary_path;

  std::vector<std::string> positional;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--threshold=", 0) == 0) {
      char* end = nullptr;
      threshold = std::strtod(arg.c_str() + 12, &end);
      if (end == nullptr || *end != '\0' || threshold < 0.0) {
        usage_and_exit(argv[0]);
      }
    } else if (arg.rfind("--min-delta-us=", 0) == 0) {
      char* end = nullptr;
      min_delta_us = std::strtod(arg.c_str() + 15, &end);
      if (end == nullptr || *end != '\0' || min_delta_us < 0.0) {
        usage_and_exit(argv[0]);
      }
    } else if (arg.rfind("--metric=", 0) == 0) {
      metric = arg.substr(9);
      if (metric.empty()) usage_and_exit(argv[0]);
    } else if (arg.rfind("--summary=", 0) == 0) {
      summary_path = arg.substr(10);
      if (summary_path.empty()) usage_and_exit(argv[0]);
    } else if (arg.rfind("--", 0) == 0) {
      usage_and_exit(argv[0]);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) usage_and_exit(argv[0]);
  baseline_path = positional[0];
  fresh_path = positional[1];

  const Document base = parse_document(baseline_path);
  const Document fresh = parse_document(fresh_path);
  if (base.records.empty()) die(baseline_path + ": no records");

  std::map<std::string, const Record*> fresh_by_key;
  for (const auto& r : fresh.records) fresh_by_key[record_key(r)] = &r;
  std::map<std::string, const Record*> base_by_key;
  for (const auto& r : base.records) base_by_key[record_key(r)] = &r;

  std::printf("%-44s %12s %12s %8s\n", "record", "baseline", "fresh",
              "delta");
  std::string md = "| record | baseline | fresh | delta | status |\n"
                   "|---|---:|---:|---:|---|\n";
  int regressions = 0, missing = 0, compared = 0;
  for (const auto& r : base.records) {
    const std::string key = record_key(r);
    const auto bit = r.numbers.find(metric);
    if (bit == r.numbers.end()) {
      die(baseline_path + ": record '" + key + "' has no metric '" + metric +
          "'");
    }
    const auto fit = fresh_by_key.find(key);
    if (fit == fresh_by_key.end()) {
      std::printf("%-44s %12.1f %12s  MISSING\n", key.c_str(), bit->second,
                  "-");
      md += strprintf("| %s | %.1f | - | - | **MISSING** |\n",
                      md_escape(key).c_str(), bit->second);
      ++missing;
      continue;
    }
    const auto fnum = fit->second->numbers.find(metric);
    if (fnum == fit->second->numbers.end()) {
      die(fresh_path + ": record '" + key + "' has no metric '" + metric +
          "'");
    }
    const double b = bit->second;
    const double f = fnum->second;
    const double delta = b > 0.0 ? f / b - 1.0 : 0.0;
    const bool bad = delta > threshold && (f - b) > min_delta_us;
    std::printf("%-44s %12.1f %12.1f %+7.1f%%%s\n", key.c_str(), b, f,
                100.0 * delta, bad ? "  REGRESSION" : "");
    md += strprintf("| %s | %.1f | %.1f | %+.1f%% | %s |\n",
                    md_escape(key).c_str(), b, f, 100.0 * delta,
                    bad ? "**REGRESSION**" : "ok");
    ++compared;
    if (bad) ++regressions;
  }
  int added = 0;
  for (const auto& r : fresh.records) {
    if (base_by_key.count(record_key(r)) == 0) {
      const double v = r.numbers.count(metric) ? r.numbers.at(metric) : 0.0;
      std::printf("%-44s %12s %12.1f  new\n", record_key(r).c_str(), "-", v);
      md += strprintf("| %s | - | %.1f | - | new |\n",
                      md_escape(record_key(r)).c_str(), v);
      ++added;
    }
  }

  const bool failed = regressions > 0 || missing > 0;
  std::printf(
      "\n%d compared on %s (threshold +%.0f%%): %d regression(s), "
      "%d missing, %d new\n",
      compared, metric.c_str(), 100.0 * threshold, regressions, missing,
      added);
  if (!summary_path.empty()) {
    // Append: several gates share one $GITHUB_STEP_SUMMARY file.
    std::ofstream os(summary_path, std::ios::app);
    if (!os) die("cannot open " + summary_path + " for appending");
    os << strprintf("### bench_diff: %s on `%s` (threshold +%.0f%%)\n\n",
                    failed ? ":x: FAIL" : ":white_check_mark: OK",
                    metric.c_str(), 100.0 * threshold)
       << md
       << strprintf("\n%d compared: %d regression(s), %d missing, %d new\n\n",
                    compared, regressions, missing, added);
    os.flush();
    if (!os) die("write failed: " + summary_path);
  }
  if (failed) {
    std::fprintf(stderr, "bench_diff: FAIL\n");
    return 1;
  }
  std::printf("bench_diff: OK\n");
  return 0;
}
