// Figure 12: sliced-CSR analysis — load balance (ideal "Balanced" vs
// "Actual" execution cost, methodology of [Huang et al. PPoPP'21]) and the
// end-to-end speedup of sliced CSR over a plain-CSR PiPAD variant.
//
// The CSR variant is PiPAD with an effectively unbounded slice size: one
// slice per row, i.e. CSR's row granularity and its load imbalance.
#include <cstdio>

#include "bench_util.hpp"
#include "sliced/sliced_csr.hpp"

int main(int argc, char** argv) {
  using namespace pipad;
  const auto flags = bench::Flags::parse(argc, argv);
  bench::DatasetCache cache(flags);

  std::printf("Figure 12 (left axis): load balance, 64 thread blocks\n\n");
  std::printf("%-18s %12s %12s %12s %12s %10s\n", "Dataset", "CSR-ideal",
              "CSR-actual", "Sliced-ideal", "Sliced-actual", "gain");
  for (const auto& cfg : flags.configs()) {
    const auto& g = cache.get(cfg);
    const auto& adj = g.snapshots[g.num_snapshots() / 2].adj;
    const auto lb_csr = sliced::csr_load_balance(adj, 64);
    const auto s = sliced::slice(adj, 32);
    const auto lb_sl = sliced::sliced_load_balance(s, 64);
    std::printf("%-18s %12.0f %12.0f %12.0f %12.0f %9.2fx\n",
                cfg.name.c_str(), lb_csr.balanced_cost, lb_csr.actual_cost,
                lb_sl.balanced_cost, lb_sl.actual_cost,
                lb_csr.imbalance() / lb_sl.imbalance());
  }

  std::printf(
      "\nFigure 12 (right axis): end-to-end speedup of sliced CSR over the "
      "plain-CSR PiPAD variant\n\n");
  std::printf("%-18s %10s %10s %10s\n", "Dataset", "EvolveGCN", "MPNN-LSTM",
              "T-GCN");
  for (const auto& cfg : flags.configs()) {
    const auto& g = cache.get(cfg);
    std::printf("%-18s", cfg.name.c_str());
    for (auto model : {models::ModelType::EvolveGcn,
                       models::ModelType::MpnnLstm, models::ModelType::TGcn}) {
      const auto tcfg = bench::train_config(flags, model);
      runtime::PipadOptions sliced_opts;
      runtime::PipadOptions csr_opts;
      csr_opts.slice_bound = 1 << 28;  // One slice per row == CSR.
      const double sliced_us =
          bench::run_method(g, bench::Method::PiPAD, tcfg, sliced_opts)
              .total_us;
      const double csr_us =
          bench::run_method(g, bench::Method::PiPAD, tcfg, csr_opts)
              .total_us;
      std::printf(" %9.2fx", csr_us / sliced_us);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check (Fig. 12): slicing closes the balanced/actual gap most "
      "on the sparse,\nskewed large graphs; dense small graphs are already "
      "balanced under CSR.\n");
  return 0;
}
