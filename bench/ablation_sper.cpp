// Ablation: force S_per in {1,2,4,8} and compare against the dynamic tuner
// (§4.4) — shows the tuner tracks or beats the best static choice — plus a
// host-prep thread sweep demonstrating the Fig. 8 prep/device overlap with
// real measured threads (the HostLane) instead of an assumed divisor.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace pipad;
  auto flags = bench::Flags::parse(argc, argv);
  if (flags.datasets.empty()) {
    flags.datasets = {"hepth", "epinions", "covid19-england"};
  }
  bench::DatasetCache cache(flags);
  bench::JsonReport report("ablation_sper", flags);

  std::printf("Ablation: forced S_per vs the dynamic tuner (total us)\n\n");
  for (auto model : bench::all_models()) {
    std::printf("--- %s ---\n", models::model_type_name(model));
    std::printf("%-18s %10s %10s %10s %10s %10s\n", "Dataset", "S=1", "S=2",
                "S=4", "S=8", "tuner");
    for (const auto& dcfg : flags.configs()) {
      const auto& g = cache.get(dcfg);
      const auto tcfg = bench::train_config(flags, model);
      std::printf("%-18s", dcfg.name.c_str());
      for (int s : {1, 2, 4, 8}) {
        auto o = bench::pipad_options(flags);
        o.forced_sper = s;
        const auto r = bench::run_method(g, bench::Method::PiPAD, tcfg, o);
        report.add(dcfg.name, models::model_type_name(model),
                   "PiPAD[S=" + std::to_string(s) + "]", r);
        std::printf(" %10.0f", r.total_us);
      }
      const auto r = bench::run_method(g, bench::Method::PiPAD, tcfg,
                                       bench::pipad_options(flags));
      report.add(dcfg.name, models::model_type_name(model), "PiPAD[tuner]",
                 r);
      std::printf(" %10.0f\n", r.total_us);
    }
    std::printf("\n");
  }

  // Host-prep thread sweep: the prep busy time is the *measured* wall-clock
  // of slicing + overlap extraction summed over the worker lanes it ran on;
  // more lanes shorten the background-prep critical path that device
  // transfers wait on (§4.3, Fig. 8).
  std::printf(
      "Ablation: HostLane threads (T-GCN; total us / measured prep us)\n\n");
  std::printf("%-18s %16s %16s %16s %16s\n", "Dataset", "T=1", "T=2", "T=4",
              "T=8");
  for (const auto& dcfg : flags.configs()) {
    const auto& g = cache.get(dcfg);
    const auto tcfg = bench::train_config(flags, models::ModelType::TGcn);
    std::printf("%-18s", dcfg.name.c_str());
    for (int t : {1, 2, 4, 8}) {
      auto o = bench::pipad_options(flags);
      o.host_threads = t;
      const auto r = bench::run_method(g, bench::Method::PiPAD, tcfg, o);
      report.add(dcfg.name, "tgcn", "PiPAD[T=" + std::to_string(t) + "]", r);
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%.0f/%.0f", r.total_us, r.prep_us);
      std::printf(" %16s", cell);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check: the tuner tracks or beats the best static S_per; the "
      "thread sweep's\nprep time is measured from real HostLane execution "
      "(it varies run to run).\n");
  return report.write_if_requested() ? 0 : 1;
}
