// Ablation: force S_per in {1,2,4,8} and compare against the dynamic tuner
// (§4.4) — shows the tuner tracks or beats the best static choice.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace pipad;
  auto flags = bench::Flags::parse(argc, argv);
  if (flags.datasets.empty()) {
    flags.datasets = {"hepth", "epinions", "covid19-england"};
  }
  bench::DatasetCache cache;

  std::printf("Ablation: forced S_per vs the dynamic tuner (total us)\n\n");
  for (auto model : bench::all_models()) {
    std::printf("--- %s ---\n", models::model_type_name(model));
    std::printf("%-18s %10s %10s %10s %10s %10s\n", "Dataset", "S=1", "S=2",
                "S=4", "S=8", "tuner");
    for (const auto& dcfg : flags.configs()) {
      const auto& g = cache.get(dcfg);
      const auto tcfg = bench::train_config(flags, model);
      std::printf("%-18s", dcfg.name.c_str());
      for (int s : {1, 2, 4, 8}) {
        runtime::PipadOptions o;
        o.forced_sper = s;
        std::printf(" %10.0f",
                    bench::run_method(g, bench::Method::PiPAD, tcfg, o)
                        .total_us);
      }
      std::printf(" %10.0f\n",
                  bench::run_method(g, bench::Method::PiPAD, tcfg)
                      .total_us);
    }
    std::printf("\n");
  }
  return 0;
}
