// ingest_stream: the bounded-memory windowed text-ingestion path.
//
// Generates a deterministic timestamped edge list (fat fixed-width rows, so
// bytes/edge is stable across seeds), gzips it, and loads it three ways —
// plain with the default 8 MiB window, plain with a deliberately tiny
// window, and gzip'd — timing each load's phases (read / inflate / parse /
// build, from graph::io::LoadStats).
//
// The binary is its own gate: all three loads must produce bit-identical
// DTDGs (adjacency, weights, features, targets and name table all folded
// into one FNV signature) and the same edge-instance count, or it exits
// nonzero — CI runs it before diffing BENCH_ingest.json, so a windowing or
// gzip regression fails fast even when timings stay inside the bench_diff
// threshold.
//
// Extra flags on top of the shared bench set (--threads / --epochs /
// --json / --window-bytes are the meaningful shared ones):
//   --dir=PATH      where the generated files live  [ingest_bench_data]
//   --gen-edges=N   edge rows to generate           [1000000]
//   --gen-nodes=N   vertex-id space (nodes=N directive)  [100000]
//   --gen-only      generate the plain + gzip files, print them, exit
//   --parse-only    load the plain file once (direct staging) and exit —
//                   the CI large-file smoke runs this under `ulimit -v`
//                   capped below the file size
#include <zlib.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/timer.hpp"
#include "graph/io/text_format.hpp"

namespace {

namespace fs = std::filesystem;
using pipad::Error;
using pipad::graph::DTDG;

struct GenConfig {
  std::string dir = "ingest_bench_data";
  long long edges = 1000000;
  long long nodes = 100000;
  bool gen_only = false;
  bool parse_only = false;
};

/// Rows are fixed-width (zero-padded ids and timestamp, fixed-precision
/// weight): 64 bytes each, so --gen-edges maps directly to file size and
/// the CI ulimit cap can be computed from it. Timestamps are monotone with
/// 12 distinct values across the file; snapshot_window=1 then buckets them
/// into 12 snapshots via the loader's bounded-memory direct staging.
void generate(const GenConfig& g, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw Error("cannot write " + path);
  os << "# ingest_stream synthetic edge list\n";
  os << "# nodes=" << g.nodes << "\n";
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 16;
  };
  char row[80];
  std::string buf;
  buf.reserve(1u << 20);
  for (long long i = 0; i < g.edges; ++i) {
    const auto src = static_cast<long long>(
        next() % static_cast<std::uint64_t>(g.nodes));
    const auto dst = static_cast<long long>(
        next() % static_cast<std::uint64_t>(g.nodes));
    const long long t = (i * 12) / g.edges;
    const double w = 0.5 + 0.25 * static_cast<double>(next() % 1024) / 1024.0;
    std::snprintf(row, sizeof(row),
                  "%012lld %012lld %019lld %016.14f\n", src, dst, t, w);
    buf += row;
    if (buf.size() >= (1u << 20)) {
      os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
      buf.clear();
    }
  }
  os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  os.flush();
  if (!os) throw Error("write failed: " + path);
}

/// Gzip `src` to `dst` at Z_BEST_SPEED (CI generates a ~200 MB input; the
/// compression level only affects generation time, not what is measured).
void gzip_file(const std::string& src, const std::string& dst) {
  std::ifstream is(src, std::ios::binary);
  if (!is) throw Error("cannot open " + src);
  gzFile out = gzopen(dst.c_str(), "wb1");
  if (out == nullptr) throw Error("cannot write " + dst);
  std::vector<char> buf(1u << 20);
  for (;;) {
    is.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    const auto got = static_cast<unsigned>(is.gcount());
    if (got == 0) break;
    if (gzwrite(out, buf.data(), got) != static_cast<int>(got)) {
      gzclose(out);
      throw Error("gzwrite failed: " + dst);
    }
  }
  if (gzclose(out) != Z_OK) throw Error("gzclose failed: " + dst);
}

std::uint64_t fold(const void* data, std::size_t n, std::uint64_t h) {
  return pipad::graph::io::fnv1a(data, n, h);
}

/// One FNV signature over everything a load produces — any bit of
/// adjacency, weight, feature, target or vertex-name divergence between
/// two loads of the same data changes it.
std::uint64_t dtdg_signature(const DTDG& g) {
  std::uint64_t h = pipad::graph::io::fnv1a_u64(
      static_cast<std::uint64_t>(g.num_nodes));
  h = pipad::graph::io::fnv1a_u64(static_cast<std::uint64_t>(g.feat_dim), h);
  h = pipad::graph::io::fnv1a_u64(
      static_cast<std::uint64_t>(g.num_snapshots()), h);
  for (const auto& name : g.vertex_names) {
    h = fold(name.data(), name.size(), h);
    h = pipad::graph::io::fnv1a_u64(name.size(), h);
  }
  for (int t = 0; t < g.num_snapshots(); ++t) {
    const auto& s = g.snapshots[static_cast<std::size_t>(t)];
    h = fold(s.adj.row_ptr.data(), s.adj.row_ptr.size() * sizeof(int), h);
    h = fold(s.adj.col_idx.data(), s.adj.col_idx.size() * sizeof(int), h);
    h = fold(s.edge_w.data(), s.edge_w.size() * sizeof(float), h);
    const auto& f = s.features;
    h = fold(f.data(), static_cast<std::size_t>(f.rows()) *
                           static_cast<std::size_t>(f.cols()) * sizeof(float),
             h);
    const auto& y = g.targets[static_cast<std::size_t>(t)];
    h = fold(y.data(), static_cast<std::size_t>(y.rows()) * sizeof(float), h);
  }
  return h;
}

struct LoadRun {
  double total_us = 0.0;
  pipad::graph::io::LoadStats stats;
  std::uint64_t signature = 0;
  std::size_t edges = 0;
};

LoadRun load_once(const std::string& path, std::size_t window_bytes) {
  pipad::graph::io::LoadOptions lo;
  lo.snapshot_window = 1;  // 12 distinct timestamps -> 12 snapshots.
  lo.window_bytes = window_bytes;
  LoadRun r;
  pipad::Timer timer;
  const DTDG g = pipad::graph::io::load_dataset(
      path, lo, &pipad::ComputePool::instance().pool(), &r.stats);
  r.total_us = timer.elapsed_us();
  r.signature = dtdg_signature(g);
  r.edges = g.total_edges();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pipad;

  // Strip the ingest-specific flags, hand the rest to the shared parser.
  GenConfig gen;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  const auto ll_value = [&](const std::string& arg, const char* key,
                            long long& out) {
    const std::string prefix = std::string(key) + "=";
    if (arg.rfind(prefix, 0) != 0) return false;
    const std::string v = arg.substr(prefix.size());
    char* end = nullptr;
    errno = 0;
    const long long n = std::strtoll(v.c_str(), &end, 10);
    if (v.empty() || end == nullptr || *end != '\0' || errno == ERANGE ||
        n < 1) {
      std::fprintf(stderr, "%s expects a positive integer, got '%s'\n", key,
                    v.c_str());
      std::exit(2);
    }
    out = n;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--dir=", 0) == 0) {
      gen.dir = arg.substr(6);
    } else if (ll_value(arg, "--gen-edges", gen.edges) ||
               ll_value(arg, "--gen-nodes", gen.nodes)) {
      // Parsed in the condition.
    } else if (arg == "--gen-only") {
      gen.gen_only = true;
    } else if (arg == "--parse-only") {
      gen.parse_only = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  const auto flags =
      bench::Flags::parse(static_cast<int>(rest.size()), rest.data());
  ComputePool::instance().configure(
      flags.job.threads > 0 ? static_cast<std::size_t>(flags.job.threads) : 0);

  const std::string plain =
      (fs::path(gen.dir) / "ingest_edges.txt").string();
  const std::string gz = plain + ".gz";
  try {
    if (!gen.parse_only) {
      fs::create_directories(gen.dir);
      generate(gen, plain);
      gzip_file(plain, gz);
      std::printf("ingest_stream: generated %s (%lld edges, %.1f MB) and "
                  "%s (%.1f MB)\n",
                  plain.c_str(), gen.edges,
                  static_cast<double>(fs::file_size(plain)) / 1e6, gz.c_str(),
                  static_cast<double>(fs::file_size(gz)) / 1e6);
      if (gen.gen_only) return 0;
    }

    if (gen.parse_only) {
      // The CI large-file smoke: one bounded-memory load of a file bigger
      // than the address-space cap the harness set with ulimit -v.
      const std::size_t wb =
          static_cast<std::size_t>(std::max<long long>(0, flags.job.window_bytes));
      const LoadRun r = load_once(plain, wb);
      std::printf("ingest_stream: parsed %s under the bounded window: "
                  "%zu edge instances, %.1f ms "
                  "(read %.1f ms, parse %.1f ms, build %.1f ms)\n",
                  plain.c_str(), r.edges, r.total_us / 1e3,
                  r.stats.read_us / 1e3, r.stats.parse_us / 1e3,
                  r.stats.build_us / 1e3);
      return r.edges > 0 ? 0 : 1;
    }

    const std::size_t default_window =
        flags.job.window_bytes > 0 ? static_cast<std::size_t>(flags.job.window_bytes)
                               : 0;
    std::printf("\n%-14s %12s %10s %10s %10s %10s\n", "method", "total_us",
                "read_ms", "inflate_ms", "parse_ms", "build_ms");
    const auto show = [](const char* name, const LoadRun& r) {
      std::printf("%-14s %12.1f %10.1f %10.1f %10.1f %10.1f\n", name,
                  r.total_us, r.stats.read_us / 1e3, r.stats.inflate_us / 1e3,
                  r.stats.parse_us / 1e3, r.stats.build_us / 1e3);
    };
    const LoadRun stream = load_once(plain, default_window);
    show("stream", stream);
    const LoadRun tiny = load_once(plain, 1u << 20);
    show("stream-1MiB", tiny);
    const LoadRun gzr = load_once(gz, default_window);
    show("gzip", gzr);

    // The gate: window size and transparent gzip must never change a bit.
    if (stream.signature != tiny.signature ||
        stream.signature != gzr.signature || stream.edges != tiny.edges ||
        stream.edges != gzr.edges) {
      std::fprintf(stderr,
                   "FAIL: loads diverge — stream %016llx/%zu, "
                   "1MiB-window %016llx/%zu, gzip %016llx/%zu\n",
                   static_cast<unsigned long long>(stream.signature),
                   stream.edges,
                   static_cast<unsigned long long>(tiny.signature),
                   tiny.edges, static_cast<unsigned long long>(gzr.signature),
                   gzr.edges);
      return 1;
    }
    std::printf("\nsignature %016llx (%zu edge instances) — identical for "
                "plain, 1 MiB window and gzip\n",
                static_cast<unsigned long long>(stream.signature),
                stream.edges);
    if (gzr.stats.inflate_us <= 0.0) {
      std::fprintf(stderr, "FAIL: gzip load measured no inflate time\n");
      return 1;
    }

    bench::JsonReport report("ingest_stream", flags);
    const auto record = [&](const char* method, const LoadRun& r) {
      models::TrainResult tr;
      tr.total_us = r.total_us;
      tr.transfer_us = r.stats.read_us + r.stats.inflate_us;
      tr.prep_us = r.stats.parse_us;
      tr.compute_us = r.stats.build_us;
      report.add("synthetic", "io", method, tr);
    };
    record("stream", stream);
    record("gzip", gzr);
    if (!report.write_if_requested()) return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ingest_stream: %s\n", e.what());
    return 1;
  }
  return 0;
}
