// Replicated data-parallel scaling: epoch time across --replicas x
// --threads grids, with the modeled all-reduce cost broken out.
//
// The headline claim this bench gates (BENCH_replicas.json in CI) is
// twofold: (1) epoch_us scales with the replica count — K devices split
// each epoch's frames, so the slowest replica's makespan shrinks as K
// grows, with the interconnect steps (allreduce_us) as the visible
// counterweight — and (2) the numerics are bitwise replica-invariant: the
// final loss for every (K, threads) cell must equal the K=1 cell exactly,
// or this binary exits nonzero before writing any JSON.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace pipad;
  const auto flags = bench::Flags::parse(argc, argv);
  bench::DatasetCache cache(flags);
  bench::JsonReport report("fig_replicas", flags);

  const std::vector<int> replica_counts = {1, 2, 4};
  // --threads on the command line names the widest pool; the sweep always
  // includes the serial pool so the determinism check crosses widths.
  std::vector<int> thread_counts = {1};
  if (flags.job.threads > 1) thread_counts.push_back(flags.job.threads);

  std::printf("Replicated data-parallel scaling (allreduce=%s)\n",
              flags.job.allreduce.c_str());
  std::printf("(epochs=%d, frames/epoch=%d, frame size=%d)\n", flags.job.epochs,
              flags.job.frames, flags.job.frame_size);

  const auto model = models::ModelType::TGcn;
  bool diverged = false;
  for (const auto& cfg : flags.configs()) {
    const auto& g = cache.get(cfg);
    const auto tcfg = bench::train_config(flags, model);
    std::printf("\n--- %s ---\n", cfg.name.c_str());
    std::printf("%-10s %8s %14s %14s %12s\n", "method", "threads",
                "epoch (us)", "allreduce (us)", "last loss");

    float ref_loss = 0.0f;
    bool have_ref = false;
    for (int threads : thread_counts) {
      for (int K : replica_counts) {
        auto popts = bench::pipad_options(flags);
        popts.host_threads = threads;
        popts.replicas = K;
        ComputePool::instance().configure(static_cast<std::size_t>(threads));
        gpusim::Gpu gpu;
        const auto r = bench::run_method(gpu, g, bench::Method::PiPAD, tcfg,
                                         popts);
        // += rather than char*+string&& (gcc-12 -Werror=restrict, PR105329).
        std::string method = "r";
        method += std::to_string(K);
        method += "xt";
        method += std::to_string(threads);
        report.add(cfg.name, models::model_type_name(model), method, r);
        if (K == 1 && threads == 1) {
          bench::write_trace(flags, "fig_replicas", gpu, cfg.name,
                             models::model_type_name(model), method);
        }
        std::printf("%-10s %8d %14.0f %14.0f %12.6f\n", method.c_str(),
                    threads, r.total_us / flags.job.epochs, r.allreduce_us,
                    static_cast<double>(r.final_loss()));
        // Bitwise invariance wall: every cell of the grid must reproduce
        // the serial single-device loss exactly.
        const float loss = r.final_loss();
        if (!have_ref) {
          ref_loss = loss;
          have_ref = true;
        } else if (std::memcmp(&ref_loss, &loss, sizeof(float)) != 0) {
          std::fprintf(stderr,
                       "[fig_replicas] DIVERGENCE on %s at %s: loss %.9g != "
                       "reference %.9g\n",
                       cfg.name.c_str(), method.c_str(),
                       static_cast<double>(loss),
                       static_cast<double>(ref_loss));
          diverged = true;
        }
      }
    }
  }
  if (diverged) {
    std::fprintf(stderr,
                 "[fig_replicas] replica determinism wall failed; not "
                 "writing JSON\n");
    return 1;
  }
  std::printf(
      "\nShape check: epoch_us shrinks as K grows (frames split across "
      "replicas) while\nallreduce_us grows with the modeled interconnect "
      "steps; every cell's loss is\nbit-identical to r1xt1.\n");
  return report.write_if_requested() ? 0 : 1;
}
