// Ablation: host-aware dynamic tuning (streaming steady prep + the
// charge-aware S_per tuner).
//
//   (a) batch vs streaming steady-state extraction on a long timeline
//       (>= 64 snapshots): the batch extractor makes the first steady
//       frame wait for every partition; the streaming extractor only for
//       its own, so time-to-first-steady-frame (first_steady_us) drops.
//       The binary FAILS (exit 1) if streaming does not improve it.
//   (b) analytic vs measured tuner mode: same workload, S_per decisions
//       and epoch time side by side.
//   (c) a determinism wall: losses and S_per decisions must be
//       bit-identical at --threads 1 vs 8 in BOTH tuner modes (occupancy
//       is derived from charged sim-time, not a wall clock read at
//       decision time). The binary FAILS (exit 1) on any mismatch.
//
// --frames is ignored: the whole timeline is trained — the long-timeline
// first-frame latency is the point of the ablation.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.hpp"

namespace {

pipad::graph::DatasetConfig long_timeline(int snapshots) {
  // Sized so the *real* per-partition overlap extraction is comparable to
  // the simulated device time of a frame: on a small graph extraction is
  // microseconds and never reaches the critical path, and batch vs stream
  // would be indistinguishable. At this size the batch-vs-stream
  // first-steady margin is ~20% while the re-measured common terms (the
  // preparing epoch's charged prep/compute) drift only a few percent run
  // to run, so the hard gate below is not noise-limited.
  pipad::graph::DatasetConfig cfg;
  cfg.name = "synthetic-long";
  cfg.num_nodes = 16384;
  cfg.raw_events = 131072;
  cfg.num_snapshots = snapshots;
  cfg.feat_dim = 2;
  cfg.edge_life = 6.0;
  cfg.seed = 2023;
  return cfg;
}

std::string decisions_summary(const std::map<int, int>& dec) {
  std::map<int, int> hist;
  for (const auto& [start, s] : dec) hist[s]++;
  std::string out;
  for (const auto& [s, n] : hist) {
    if (!out.empty()) out += " ";
    out += "S=" + std::to_string(s) + "x" + std::to_string(n);
  }
  return out.empty() ? "-" : out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pipad;
  const auto flags = bench::Flags::parse(argc, argv);
  bench::JsonReport report("ablation_tuner", flags);

  const int snapshots = 64;
  bench::DatasetCache cache(flags);  // Configures the ComputePool.
  const auto g =
      graph::generate(long_timeline(snapshots), &ComputePool::instance().pool());

  auto tcfg = bench::train_config(flags, models::ModelType::TGcn);
  tcfg.max_frames_per_epoch = 0;  // Every frame of the long timeline.

  auto run_on = [&](gpusim::Gpu& gpu, const runtime::PipadOptions& o,
                    std::map<int, int>* dec) {
    runtime::PipadTrainer trainer(gpu, g, tcfg, o);
    const auto r = trainer.train();
    if (dec != nullptr) *dec = trainer.sper_decisions();
    return r;
  };
  auto run = [&](const runtime::PipadOptions& o, std::map<int, int>* dec) {
    gpusim::Gpu gpu;
    return run_on(gpu, o, dec);
  };

  std::printf(
      "Ablation: streaming steady prep + charge-aware tuner "
      "(%d snapshots, frame size %d, epochs %d, T-GCN)\n\n",
      snapshots, flags.job.frame_size, flags.job.epochs);

  struct Variant {
    const char* method;
    runtime::PipadOptions opts;
  };
  std::vector<Variant> variants(3);
  variants[0].method = "PiPAD[batch]";
  variants[0].opts.stream_prep = false;
  variants[1].method = "PiPAD[stream]";
  variants[2].method = "PiPAD[measured]";
  variants[2].opts.tuner = runtime::TunerMode::Measured;
  for (auto& v : variants) v.opts.host_threads = flags.job.threads;

  std::printf("%-18s %12s %12s %14s  %s\n", "variant", "total us",
              "epoch us", "first-steady", "S_per decisions");
  std::vector<models::TrainResult> results;
  std::vector<std::map<int, int>> variant_decisions;
  for (const auto& v : variants) {
    std::map<int, int> dec;
    gpusim::Gpu gpu;
    const auto r = run_on(gpu, v.opts, &dec);
    report.add(g.name, "tgcn", v.method, r);
    bench::write_trace(flags, "ablation_tuner", gpu, g.name, "tgcn",
                       v.method);
    std::printf("%-18s %12.0f %12.0f %14.0f  %s\n", v.method, r.total_us,
                r.total_us / flags.job.epochs, r.first_steady_us,
                decisions_summary(dec).c_str());
    results.push_back(r);
    variant_decisions.push_back(std::move(dec));
  }

  int failures = 0;
  const double batch_fs = results[0].first_steady_us;
  const double stream_fs = results[1].first_steady_us;
  // The batch-vs-stream comparison is only structural with >= 2 worker
  // lanes: with a single lane there is no background lane for extraction
  // to overlap on — prep-epoch charges, extraction and steady compute all
  // serialize onto it, the margin collapses to the run-to-run noise of
  // that one measured lane, and the comparison is informational only.
  // Keyed on the *effective* pool width, not the flag: --threads=0 on a
  // single-core host also resolves to one lane.
  const bool single_lane = ComputePool::instance().pool().size() < 2;
  if (!single_lane && !(stream_fs < batch_fs)) {
    std::fprintf(stderr,
                 "FAIL: streaming prep did not improve time-to-first-steady-"
                 "frame (stream %.0f us vs batch %.0f us)\n",
                 stream_fs, batch_fs);
    ++failures;
  } else {
    std::printf(
        "\nstreaming prep: first steady frame %.2fx %s than the batch "
        "extractor%s\n",
        stream_fs < batch_fs ? batch_fs / stream_fs : stream_fs / batch_fs,
        stream_fs < batch_fs ? "sooner" : "later",
        single_lane ? " (informational with a single worker lane)" : "");
  }

  // (c) losses + decisions bit-identical across thread counts, both modes.
  // Stable for the measured tuner because this workload's transfers sit
  // orders of magnitude below stall_tolerance x (compute + measured host
  // cost): the occupancy sample varies run to run, but no S_per option is
  // anywhere near the rejection threshold it feeds.
  for (auto mode : {runtime::TunerMode::Analytic, runtime::TunerMode::Measured}) {
    const bool analytic = mode == runtime::TunerMode::Analytic;
    const char* mode_name = analytic ? "analytic" : "measured";
    runtime::PipadOptions o1, o8;
    o1.tuner = o8.tuner = mode;
    o1.host_threads = 1;
    o8.host_threads = 8;
    std::map<int, int> d1, d8;
    // When the binary ran at --threads=1 the variant table above already
    // trained this exact configuration; reuse it instead of training
    // twice. (CI pins --threads=2, where all four sweeps run fresh.)
    models::TrainResult r1;
    if (flags.job.threads == 1) {
      r1 = analytic ? results[1] : results[2];
      d1 = analytic ? variant_decisions[1] : variant_decisions[2];
    } else {
      r1 = run(o1, &d1);
    }
    const auto r8 = run(o8, &d8);
    bool ok = d1 == d8 && r1.frame_loss.size() == r8.frame_loss.size();
    if (ok) {
      for (std::size_t i = 0; i < r1.frame_loss.size(); ++i) {
        if (r1.frame_loss[i] != r8.frame_loss[i]) {  // Bitwise.
          ok = false;
          break;
        }
      }
    }
    if (!ok) {
      std::fprintf(stderr,
                   "FAIL: --threads 1 vs 8 diverged under the %s tuner "
                   "(losses and S_per decisions must be bit-identical)\n",
                   mode_name);
      ++failures;
    } else {
      std::printf(
          "determinism: %s tuner bit-identical at --threads 1 vs 8 "
          "(%zu frames, %s)\n",
          mode_name, r1.frame_loss.size(), decisions_summary(d1).c_str());
    }
  }
  // Restore the flag-selected pool width after the 1/8 sweeps.
  ComputePool::instance().configure(
      flags.job.threads > 0 ? static_cast<std::size_t>(flags.job.threads) : 0);

  if (failures == 0) {
    std::printf(
        "\nShape check: streaming cuts first-steady-frame latency on long "
        "timelines; the measured\ntuner folds real charged occupancy into "
        "the stall rejection without breaking determinism.\n");
  }
  if (!report.write_if_requested()) return 1;
  return failures == 0 ? 0 : 1;
}
