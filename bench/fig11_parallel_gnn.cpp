// Figure 11 + §5.3: kernel-level analysis of the dimension-aware parallel
// GNN, inter-frame reuse disabled.
//  (a) 1-layer GNN execution-time speedup over PyGT / PyGT-G, and the
//      reduction in global memory requests/transactions vs GE-SpMM
//      (paper: 5.6x / 3.1x time; -57% requests, -45% transactions);
//  (b) dimension sensitivity on the small datasets (>= 5.2x everywhere);
//  plus the warp-execution-efficiency comparison (57.2% -> 64.9% with
//  D=2/H=6 in the paper).
#include <cstdio>

#include "bench_util.hpp"
#include "kernels/aggregate.hpp"
#include "sliced/partition.hpp"

namespace {

using namespace pipad;

struct GnnRun {
  double time_us = 0.0;
  gpusim::KernelStats stats;
};

// One-layer GNN (aggregate + normalize) over `count` snapshots, one at a
// time, with the given kernel flavour.
GnnRun run_sequential(const graph::DTDG& g, int start, int count, int f,
                      bool gespmm, const gpusim::CostModel& cm, Rng& rng) {
  GnnRun out;
  for (int i = 0; i < count; ++i) {
    const auto& snap = g.snapshots[start + i];
    const Tensor x = Tensor::randn(g.num_nodes, f, rng);
    Tensor agg(g.num_nodes, f), h(g.num_nodes, f);
    gpusim::KernelStats st;
    if (gespmm) {
      st = kernels::agg_gespmm(snap.adj, x, agg);
    } else {
      st = kernels::agg_coo(graph::coo_from_csr(snap.adj), x, agg);
    }
    st = st.scaled(g.sim_scale);  // Report full-size work (README, DESIGN).
    out.stats += st;
    out.time_us += cm.kernel_us(st);
    const auto nst = kernels::gcn_normalize(kernels::degrees(snap.adj), x,
                                            agg, h)
                         .scaled(g.sim_scale);
    out.stats += nst;
    out.time_us += cm.kernel_us(nst);
  }
  return out;
}

GnnRun run_parallel(const graph::DTDG& g, int start, int count, int f,
                    const gpusim::CostModel& cm, Rng& rng) {
  GnnRun out;
  const auto part = sliced::build_partition(g, start, count);
  std::vector<Tensor> xs;
  std::vector<const Tensor*> xp;
  std::vector<const std::vector<float>*> degs;
  std::vector<std::vector<float>> deg_store;
  for (int i = 0; i < count; ++i) {
    xs.push_back(Tensor::randn(g.num_nodes, f, rng));
    deg_store.push_back(kernels::degrees(g.snapshots[start + i].adj));
  }
  for (int i = 0; i < count; ++i) {
    xp.push_back(&xs[i]);
    degs.push_back(&deg_store[i]);
  }
  const Tensor coal = sliced::coalesce_features(xp);
  Tensor agg(g.num_nodes, f * count);
  auto st = kernels::agg_sliced(part.overlap, coal, agg).scaled(g.sim_scale);
  out.stats += st;
  out.time_us += cm.kernel_us(st);
  for (int i = 0; i < count; ++i) {
    if (part.exclusive[i].nnz() == 0) continue;
    Tensor e(g.num_nodes, f);
    auto est =
        kernels::agg_sliced(part.exclusive[i], xs[i], e).scaled(g.sim_scale);
    out.stats += est;
    out.time_us += cm.kernel_us(est);
  }
  Tensor h(g.num_nodes, f * count);
  auto nst =
      kernels::gcn_normalize_coalesced(degs, coal, agg, h).scaled(g.sim_scale);
  out.stats += nst;
  out.time_us += cm.kernel_us(nst);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pipad;
  const auto flags = bench::Flags::parse(argc, argv);
  bench::DatasetCache cache(flags);
  gpusim::CostModel cm((gpusim::SimConfig()));

  std::printf(
      "Figure 11(a): 1-layer GNN speedup & memory-access reduction "
      "(reuse disabled, S_per=4)\n\n");
  std::printf("%-18s %10s %10s %10s %10s\n", "Dataset", "vs PyGT",
              "vs PyGT-G", "dReq", "dTxn");
  std::vector<double> sp_pygt, sp_gespmm, dreq, dtxn;
  for (const auto& cfg : flags.configs()) {
    const auto& g = cache.get(cfg);
    Rng rng(42);
    const int count = std::min(4, g.num_snapshots());
    // Mid-sequence snapshots: the opening snapshots sit in the edge-life
    // ramp-up window where overlap is unrepresentatively low.
    const int start = std::max(0, g.num_snapshots() / 2 - count);
    const auto coo =
        run_sequential(g, start, count, g.feat_dim, false, cm, rng);
    const auto ge =
        run_sequential(g, start, count, g.feat_dim, true, cm, rng);
    const auto par = run_parallel(g, start, count, g.feat_dim, cm, rng);
    const double req_red =
        1.0 - static_cast<double>(par.stats.global_requests) /
                  ge.stats.global_requests;
    const double txn_red =
        1.0 - static_cast<double>(par.stats.global_transactions) /
                  ge.stats.global_transactions;
    std::printf("%-18s %9.2fx %9.2fx %8.1f%% %8.1f%%\n", cfg.name.c_str(),
                coo.time_us / par.time_us, ge.time_us / par.time_us,
                100.0 * req_red, 100.0 * txn_red);
    sp_pygt.push_back(coo.time_us / par.time_us);
    sp_gespmm.push_back(ge.time_us / par.time_us);
    dreq.push_back(req_red);
    dtxn.push_back(txn_red);
  }
  std::printf(
      "\nmean: %.1fx over PyGT (paper 5.6x), %.1fx over PyGT-G (paper "
      "3.1x),\nrequests -%.0f%% (paper -57%%), transactions -%.0f%% (paper "
      "-45%%)\n",
      mean(sp_pygt), mean(sp_gespmm), 100.0 * mean(dreq),
      100.0 * mean(dtxn));

  // ---- (b) dimension sensitivity on the small datasets ----
  std::printf("\nFigure 11(b): dimension sensitivity (speedup over PyGT)\n\n");
  std::printf("%-18s %8s %8s %8s %8s\n", "Dataset", "F=2", "F=16", "F=64",
              "F=128");
  for (const auto& cfg : flags.configs()) {
    if (cfg.name != "hepth" && cfg.name != "pems08" &&
        cfg.name != "covid19-england") {
      continue;
    }
    const auto& g = cache.get(cfg);
    std::printf("%-18s", cfg.name.c_str());
    for (int f : {2, 16, 64, 128}) {
      Rng rng(7);
      const int count = std::min(4, g.num_snapshots());
      const int start = std::max(0, g.num_snapshots() / 2 - count);
      const auto seq = run_sequential(g, start, count, f, false, cm, rng);
      const auto par = run_parallel(g, start, count, f, cm, rng);
      std::printf(" %7.2fx", seq.time_us / par.time_us);
    }
    std::printf("\n");
  }

  // ---- §5.3: warp execution efficiency with D=2 ----
  std::printf("\nThread utilization (warp_execution_efficiency, D=2):\n");
  {
    const auto& g = cache.get(flags.configs().front());
    Rng rng(9);
    const int count = std::min(4, g.num_snapshots());
    const int start = std::max(0, g.num_snapshots() / 2 - count);
    const auto ge = run_sequential(g, start, count, 2, true, cm, rng);
    const auto par = run_parallel(g, start, count, 2, cm, rng);
    std::printf("  PyGT-G: %.1f%%   PiPAD: %.1f%%   (paper: 57.2%% -> "
                "64.9%%)\n",
                100.0 * ge.stats.warp_efficiency(),
                100.0 * par.stats.warp_efficiency());
  }
  return 0;
}
