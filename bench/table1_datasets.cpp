// Table 1: graph datasets for evaluation — vertices, distinct temporal
// edges (#E), feature dimension, snapshots, and edge instances after
// edge-life smoothing (#E-S), plus the measured adjacent-snapshot overlap
// that motivates the whole design (§3.1).
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace pipad;
  const auto flags = bench::Flags::parse(argc, argv);
  bench::DatasetCache cache(flags);

  std::printf(
      "Table 1: synthetic stand-ins for the evaluation datasets "
      "(scale-large=1/%d, scale-small=1/%d)\n\n",
      flags.job.scale_large, flags.job.scale_small);
  std::printf("%-18s %10s %14s %4s %5s %14s %10s\n", "Dataset", "#N", "#E",
              "D", "#S", "#E-S", "adj-OR");
  for (const auto& cfg : flags.configs()) {
    const auto& g = cache.get(cfg);
    const auto st = graph::compute_stats(g);
    std::printf("%-18s %10s %14s %4d %5d %14s %9.1f%%\n", cfg.name.c_str(),
                with_commas(g.num_nodes).c_str(),
                with_commas(st.distinct_edges).c_str(), g.feat_dim,
                g.num_snapshots(), with_commas(st.smoothed_edges).c_str(),
                100.0 * st.mean_adjacent_overlap);
  }
  std::printf(
      "\n#E = distinct temporal edges; #E-S = edge instances summed over\n"
      "snapshots after edge-life smoothing [ESDG]. adj-OR = mean Jaccard\n"
      "overlap of adjacent snapshots (paper reports ~90%% topology kept,\n"
      "i.e. ~10%% change rate, for the slowly-evolving graphs).\n");
  return 0;
}
