// Figure 10: end-to-end training speedup over PyGT for every method, model
// and dataset — the headline result (paper: PiPAD reaches 1.54x-9.57x over
// PyGT, averaging 4.71x / 3.98x / 5.18x on EvolveGCN / MPNN-LSTM / T-GCN,
// and 1.22x-... over the strongest variant PyGT-G).
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace pipad;
  const auto flags = bench::Flags::parse(argc, argv);
  bench::DatasetCache cache(flags);
  bench::JsonReport report("fig10_end2end", flags);

  std::printf("Figure 10: end-to-end training speedup over PyGT\n");
  std::printf("(epochs=%d, frames/epoch=%d, frame size=%d)\n", flags.job.epochs,
              flags.job.frames, flags.job.frame_size);

  for (auto model : bench::all_models()) {
    std::printf("\n--- %s ---\n", models::model_type_name(model));
    std::printf("%-18s", "Dataset");
    for (auto m : bench::all_methods()) {
      std::printf(" %9s", bench::method_name(m));
    }
    std::printf("\n");

    std::vector<double> pipad_speedups, vs_second_best;
    for (const auto& cfg : flags.configs()) {
      const auto& g = cache.get(cfg);
      const auto tcfg = bench::train_config(flags, model);
      std::vector<double> totals;
      for (auto m : bench::all_methods()) {
        gpusim::Gpu gpu;
        const auto r =
            bench::run_method(gpu, g, m, tcfg, bench::pipad_options(flags));
        report.add(cfg.name, models::model_type_name(model),
                   bench::method_name(m), r);
        bench::write_trace(flags, "fig10_end2end", gpu, cfg.name,
                           models::model_type_name(model),
                           bench::method_name(m));
        totals.push_back(r.total_us);
      }
      std::printf("%-18s", cfg.name.c_str());
      double best_baseline = 1e300;
      for (std::size_t i = 0; i < totals.size(); ++i) {
        std::printf(" %8.2fx", totals[0] / totals[i]);
        if (i > 0 && i + 1 < totals.size()) {
          best_baseline = std::min(best_baseline, totals[i]);
        }
      }
      std::printf("\n");
      pipad_speedups.push_back(totals[0] / totals.back());
      vs_second_best.push_back(best_baseline / totals.back());
    }
    std::printf(
        "%s geomean PiPAD speedup: %.2fx over PyGT, %.2fx over the best "
        "PyGT variant\n",
        models::model_type_name(model), geomean(pipad_speedups),
        geomean(vs_second_best));
  }
  std::printf(
      "\nShape check (Fig. 10): PiPAD wins in geomean for every model; "
      "PyGT-G is the strongest\nvariant. epoch_us now includes the "
      "*measured* numeric-kernel execution charged to the\n--threads "
      "ComputePool lanes (serial COO scatter for the PyG-style baselines, "
      "row-blocked\nparallel kernels for PiPAD and GE-SpMM), so margins "
      "tighten on CPU-bound configs and\nthe same run at --threads=8 vs "
      "--threads=1 shows the real aggregation+GEMM speedup.\n");
  return report.write_if_requested() ? 0 : 1;
}
