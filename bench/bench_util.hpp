// Shared benchmark scaffolding: flag parsing, dataset caching, method
// runners, table printing and the bench-to-JSON harness.
//
// The job description lives in an api::JobSpec (Flags::job): every bench
// binary accepts the same --name=value vocabulary as the `pipad` CLI and
// the serve daemon (api::apply_flag — one set of flags, one validator, one
// set of error messages; see api/job_spec.hpp). On top of that, benches
// add three flags of their own:
//   --datasets=a,b    comma-separated subset of the Table-1 names and/or
//                     file:PATH specs for on-disk datasets (edge list /
//                     temporal CSV / .dtdg; docs/DATASET_FORMATS.md)
//                                                          (default all 7)
//   --json=FILE       write per-run records to FILE as JSON (wired into
//                     fig10_end2end and ablation_sper; other binaries
//                     accept but ignore it until they adopt JsonReport)
//   --trace-dir=DIR   write one trace CSV per run into DIR (created if
//                     missing), named <bench>-<dataset>-<model>-<method>.csv
//                     and labeled for `pipad analyze` (wired into
//                     fig10_end2end and ablation_tuner; other binaries
//                     accept but ignore it)
// Unknown flags and invalid values are rejected with a usage message
// (exit code 2), mirroring the CLI driver. Defaults are sized for a
// single-core CI run; the *shape* of each figure is stable across scales
// because it derives from the analytic cost model.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/job_spec.hpp"
#include "api/run_job.hpp"
#include "baselines/baseline_trainer.hpp"
#include "common/compute_pool.hpp"
#include "common/util.hpp"
#include "gpusim/trace.hpp"
#include "graph/generator.hpp"
#include "graph/io/loader.hpp"
#include "host/host_lane.hpp"
#include "models/bench_record.hpp"
#include "pipad/pipad_trainer.hpp"
#include "replica/replica_trainer.hpp"

namespace pipad::bench {

struct Flags {
  /// The shared job description (--scale-large, --epochs, --threads,
  /// --tuner, --replicas, ... — everything api::apply_flag understands).
  api::JobSpec job;

  std::vector<std::string> datasets;
  std::string json;  ///< Non-empty: write run records to this file.
  std::string trace_dir;  ///< Non-empty: write one trace CSV per run here.

  static std::string usage(const char* prog) {
    std::string p = prog != nullptr ? prog : "bench";
    return "usage: " + p + " [--name=value ...]\n"
           "\n"
           "job flags (shared with the pipad CLI, --name=value form):\n" +
           api::flags_help() +
           "\n"
           "bench flags:\n"
           "  --datasets=a,b     comma-separated subset of the Table-1\n"
           "                     names and/or file:PATH specs  [all 7]\n"
           "  --json=FILE        write per-run records as JSON\n"
           "                     (bench_diff-compatible)\n"
           "  --trace-dir=DIR    write one labeled trace CSV per run\n";
  }

  /// Strict non-exiting parse of `--name=value` arguments (program name
  /// excluded): bench-only flags here, everything else through
  /// api::apply_flag, then the shared validator. Returns false with the
  /// canonical error message — byte-identical to what `pipad train` prints
  /// for the same bad input (cli_test pins this).
  static bool try_parse(const std::vector<std::string>& args, Flags& f,
                        std::string& error) {
    for (const std::string& arg : args) {
      const auto eq = arg.find('=');
      if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
        error = "unknown argument '" + arg + "' (flags are --name=value)";
        return false;
      }
      const std::string key = arg.substr(0, eq);
      const std::string value = arg.substr(eq + 1);
      if (key == "--json") {
        if (value.empty()) {
          error = "--json expects a file path";
          return false;
        }
        f.json = value;
      } else if (key == "--trace-dir") {
        if (value.empty()) {
          error = "--trace-dir expects a directory path";
          return false;
        }
        f.trace_dir = value;
      } else if (key == "--datasets") {
        if (value.empty()) {
          error = "--datasets expects a comma-separated list";
          return false;
        }
        std::size_t pos = 0;
        while (pos != std::string::npos) {
          const auto next = value.find(',', pos);
          const std::string name = value.substr(
              pos, next == std::string::npos ? next : next - pos);
          bool known = graph::io::is_file_dataset(name);
          for (const auto& c : graph::evaluation_datasets()) {
            if (c.name == name) known = true;
          }
          if (!known) {
            error = "unknown dataset '" + name + "'";
            return false;
          }
          f.datasets.push_back(name);
          pos = next == std::string::npos ? next : next + 1;
        }
      } else {
        switch (api::apply_flag(key, value, f.job, error)) {
          case api::FlagStatus::Applied:
            break;
          case api::FlagStatus::Error:
            return false;
          case api::FlagStatus::Unknown:
            error = "unknown flag '" + key + "'";
            return false;
        }
      }
    }
    // The file-oriented knobs (--snapshot-window, --window-bytes,
    // --cache-dir) apply to the file: entries of --datasets here, not to
    // job.dataset — validate under a file: stand-in so the shared
    // validator doesn't demand --dataset file:PATH, which benches don't
    // take. With no file: entry the knobs are accepted-and-ignored, as
    // they always were.
    api::JobSpec v = f.job;
    for (const auto& d : f.datasets) {
      if (graph::io::is_file_dataset(d)) {
        v.dataset = d;
        break;
      }
    }
    if (!graph::io::is_file_dataset(v.dataset) &&
        (v.snapshot_window > 0 || v.window_bytes > 0 ||
         !v.cache_dir.empty() || !v.features.empty())) {
      v.dataset = "file:-";
    }
    error = v.validate();
    return error.empty();
  }

  /// try_parse + usage message + exit(2) on error, like the `pipad` CLI.
  static Flags parse(int argc, char** argv) {
    Flags f;
    std::string error;
    if (!try_parse(std::vector<std::string>(argv + 1, argv + argc), f,
                   error)) {
      std::fprintf(stderr, "%s: %s\n\n%s", argv[0], error.c_str(),
                   usage(argv[0]).c_str());
      std::exit(2);
    }
    return f;
  }

  std::vector<graph::DatasetConfig> configs() const {
    auto all =
        graph::evaluation_datasets(job.scale_large, job.scale_small);
    if (datasets.empty()) return all;
    std::vector<graph::DatasetConfig> out;
    for (const auto& want : datasets) {
      if (graph::io::is_file_dataset(want)) {
        // On-disk dataset: the name carries the whole spec; DatasetCache
        // dispatches on the prefix.
        graph::DatasetConfig c;
        c.name = want;
        out.push_back(c);
        continue;
      }
      for (const auto& c : all) {
        if (c.name == want) out.push_back(c);
      }
    }
    return out;
  }

  /// Loader options for file: dataset specs.
  graph::io::LoadOptions file_load_options() const {
    graph::io::LoadOptions o;
    o.snapshot_window = job.snapshot_window;
    o.cache_dir = job.cache_dir;
    o.window_bytes = static_cast<std::size_t>(job.window_bytes);
    return o;
  }
};

/// PiPAD runtime options derived from the shared job spec.
inline runtime::PipadOptions pipad_options(const Flags& f) {
  return api::pipad_options(f.job);
}

/// Dataset construction is the slow part; cache per process and build each
/// snapshot on the process-wide ComputePool. Constructed from the shared
/// Flags so --threads=N governs generation, loading, host prep and the
/// numeric kernels alike (0 = library default), and so file: specs pick up
/// --snapshot-window/--cache-dir.
class DatasetCache {
 public:
  explicit DatasetCache(const Flags& flags)
      : file_opts_(flags.file_load_options()) {
    ComputePool::instance().configure(
        flags.job.threads > 0 ? static_cast<std::size_t>(flags.job.threads)
                              : 0);
  }

  const graph::DTDG& get(const graph::DatasetConfig& cfg) {
    auto it = cache_.find(cfg.name);
    if (it == cache_.end()) {
      if (graph::io::is_file_dataset(cfg.name)) {
        std::fprintf(stderr, "[bench] loading %s ...\n", cfg.name.c_str());
        it = cache_
                 .emplace(cfg.name,
                          graph::io::load_dataset(
                              graph::io::file_dataset_path(cfg.name),
                              file_opts_, &ComputePool::instance().pool()))
                 .first;
      } else {
        std::fprintf(stderr, "[bench] generating %s ...\n", cfg.name.c_str());
        it = cache_
                 .emplace(cfg.name, graph::generate(
                                        cfg, &ComputePool::instance().pool()))
                 .first;
      }
    }
    return it->second;
  }

 private:
  graph::io::LoadOptions file_opts_;
  std::map<std::string, graph::DTDG> cache_;
};

inline models::TrainConfig train_config(const Flags& f, models::ModelType m) {
  // Deliberately NOT api::train_config: benches keep TrainConfig's default
  // seed (7), which every checked-in BENCH_*.json baseline was recorded
  // under; the CLI/serve surfaces use the JobSpec seed (default 2023).
  models::TrainConfig cfg;
  cfg.model = m;
  cfg.frame_size = f.job.frame_size;
  cfg.epochs = f.job.epochs;
  cfg.max_frames_per_epoch = f.job.frames;
  return cfg;
}

enum class Method { PyGT, PyGTA, PyGTR, PyGTG, PiPAD };

inline const char* method_name(Method m) {
  switch (m) {
    case Method::PyGT:
      return "PyGT";
    case Method::PyGTA:
      return "PyGT-A";
    case Method::PyGTR:
      return "PyGT-R";
    case Method::PyGTG:
      return "PyGT-G";
    case Method::PiPAD:
      return "PiPAD";
  }
  return "?";
}

inline const std::vector<Method>& all_methods() {
  static const std::vector<Method> ms = {Method::PyGT, Method::PyGTA,
                                         Method::PyGTR, Method::PyGTG,
                                         Method::PiPAD};
  return ms;
}

/// Train on a caller-owned Gpu, leaving the timeline available for trace
/// export (--trace-dir) or analysis.
inline models::TrainResult run_method(gpusim::Gpu& gpu,
                                      const graph::DTDG& data, Method m,
                                      const models::TrainConfig& cfg,
                                      runtime::PipadOptions popts = {}) {
  switch (m) {
    case Method::PyGT:
      return baselines::BaselineTrainer(gpu, data, cfg,
                                        baselines::Variant::PyGT)
          .train();
    case Method::PyGTA:
      return baselines::BaselineTrainer(gpu, data, cfg,
                                        baselines::Variant::PyGTA)
          .train();
    case Method::PyGTR:
      return baselines::BaselineTrainer(gpu, data, cfg,
                                        baselines::Variant::PyGTR)
          .train();
    case Method::PyGTG:
      return baselines::BaselineTrainer(gpu, data, cfg,
                                        baselines::Variant::PyGTG)
          .train();
    case Method::PiPAD:
      if (popts.replicas > 0) {
        return replica::ReplicaTrainer(gpu, data, cfg, popts).train();
      }
      return runtime::PipadTrainer(gpu, data, cfg, popts).train();
  }
  throw Error("bad method");
}

inline models::TrainResult run_method(const graph::DTDG& data, Method m,
                                      const models::TrainConfig& cfg,
                                      runtime::PipadOptions popts = {}) {
  gpusim::Gpu gpu;
  return run_method(gpu, data, m, cfg, popts);
}

/// "PiPAD[batch]" -> "PiPAD_batch_": trace filenames stay portable.
inline std::string trace_file_component(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) c = '_';
  }
  return out.empty() ? std::string("trace") : out;
}

/// Write one labeled trace CSV under flags.trace_dir (no-op when the flag
/// is unset). The file lands at DIR/<bench>-<dataset>-<model>-<method>.csv
/// so CI can feed it straight to `pipad analyze`.
inline void write_trace(const Flags& flags, const std::string& bench,
                        const gpusim::Gpu& gpu, const std::string& dataset,
                        const std::string& model, const std::string& method) {
  if (flags.trace_dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(flags.trace_dir, ec);
  const std::string path = flags.trace_dir + "/" +
                           trace_file_component(bench) + "-" +
                           trace_file_component(dataset) + "-" +
                           trace_file_component(model) + "-" +
                           trace_file_component(method) + ".csv";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "[bench] cannot open %s for writing\n",
                 path.c_str());
    return;
  }
  gpusim::write_trace_csv(gpu.timeline(), os,
                          gpusim::TraceMeta{dataset, model, method});
  std::fprintf(stderr, "[bench] trace written to %s\n", path.c_str());
}

inline const std::vector<models::ModelType>& all_models() {
  static const std::vector<models::ModelType> ms = {
      models::ModelType::EvolveGcn, models::ModelType::MpnnLstm,
      models::ModelType::TGcn};
  return ms;
}

/// Short dataset labels matching Table 2 of the paper.
inline std::string short_name(const std::string& dataset) {
  if (dataset == "amz-automotive") return "AA";
  if (dataset == "epinions") return "EP";
  if (dataset == "flickr") return "FL";
  if (dataset == "youtube") return "YT";
  if (dataset == "hepth") return "HT";
  if (dataset == "covid19-england") return "CE";
  if (dataset == "pems08") return "PE";
  return dataset;
}

/// Bench-to-JSON harness: collects one record per (dataset, model, method)
/// run and writes them as a stable JSON document so the perf trajectory can
/// be diffed across commits (BENCH_*.json baselines, CI artifacts).
class JsonReport {
 public:
  JsonReport(std::string bench, const Flags& flags)
      : bench_(std::move(bench)), flags_(flags) {}

  void add(const std::string& dataset, const std::string& model,
           const std::string& method, const models::TrainResult& r) {
    rows_.push_back(Row{dataset, model, method, r});
  }

  bool empty() const { return rows_.empty(); }

  /// Write the collected records; returns false (with a message on stderr)
  /// when the file cannot be opened.
  bool write(const std::string& path) const {
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "[bench] cannot open %s for writing\n",
                   path.c_str());
      return false;
    }
    os << "{\n  \"bench\": \"" << bench_ << "\",\n"
       << "  \"flags\": {\"scale_large\": " << flags_.job.scale_large
       << ", \"scale_small\": " << flags_.job.scale_small
       << ", \"epochs\": " << flags_.job.epochs
       << ", \"frames\": " << flags_.job.frames
       << ", \"frame_size\": " << flags_.job.frame_size
       << ", \"threads\": " << flags_.job.threads << "},\n"
       << "  \"records\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      os << models::bench_record_json(r.dataset, r.model, r.method,
                                      r.result.total_us / flags_.job.epochs,
                                      r.result)
         << (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
    return static_cast<bool>(os);
  }

  /// Write when --json was given; prints a confirmation line.
  bool write_if_requested() const {
    if (flags_.json.empty()) return true;
    if (!write(flags_.json)) return false;
    std::printf("\n[bench] %zu records written to %s\n", rows_.size(),
                flags_.json.c_str());
    return true;
  }

 private:
  struct Row {
    std::string dataset, model, method;
    models::TrainResult result;
  };
  std::string bench_;
  Flags flags_;
  std::vector<Row> rows_;
};

}  // namespace pipad::bench
