// Shared benchmark scaffolding: flag parsing, dataset caching, method
// runners and table printing.
//
// Every bench binary accepts:
//   --scale-large=N   divisor for the four large graphs   (default 256)
//   --scale-small=N   divisor for HepTh                    (default 8)
//   --epochs=N        training epochs                      (default 2)
//   --frames=N        max frames per epoch                 (default 4)
//   --frame-size=N    sliding-window size                  (default 8;
//                     paper uses 16 — raise for fidelity, costs runtime)
//   --datasets=a,b    comma-separated subset               (default all 7)
// Defaults are sized for a single-core CI run; the *shape* of each figure
// is stable across scales because it derives from the analytic cost model.
#pragma once

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline_trainer.hpp"
#include "common/util.hpp"
#include "graph/generator.hpp"
#include "pipad/pipad_trainer.hpp"

namespace pipad::bench {

struct Flags {
  int scale_large = 256;
  int scale_small = 8;
  int epochs = 2;
  int frames = 4;
  int frame_size = 8;
  std::vector<std::string> datasets;

  static Flags parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto val = [&](const char* key) -> const char* {
        const std::string prefix = std::string(key) + "=";
        return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size()
                                         : nullptr;
      };
      if (const char* v = val("--scale-large")) f.scale_large = std::atoi(v);
      if (const char* v = val("--scale-small")) f.scale_small = std::atoi(v);
      if (const char* v = val("--epochs")) f.epochs = std::atoi(v);
      if (const char* v = val("--frames")) f.frames = std::atoi(v);
      if (const char* v = val("--frame-size")) f.frame_size = std::atoi(v);
      if (const char* v = val("--datasets")) {
        std::string s = v;
        std::size_t pos = 0;
        while (pos != std::string::npos) {
          const auto next = s.find(',', pos);
          f.datasets.push_back(s.substr(
              pos, next == std::string::npos ? next : next - pos));
          pos = next == std::string::npos ? next : next + 1;
        }
      }
    }
    return f;
  }

  std::vector<graph::DatasetConfig> configs() const {
    auto all = graph::evaluation_datasets(scale_large, scale_small);
    if (datasets.empty()) return all;
    std::vector<graph::DatasetConfig> out;
    for (const auto& want : datasets) {
      for (const auto& c : all) {
        if (c.name == want) out.push_back(c);
      }
    }
    return out;
  }
};

/// Dataset generation is the slow part; cache per process.
class DatasetCache {
 public:
  const graph::DTDG& get(const graph::DatasetConfig& cfg) {
    auto it = cache_.find(cfg.name);
    if (it == cache_.end()) {
      std::fprintf(stderr, "[bench] generating %s ...\n", cfg.name.c_str());
      it = cache_.emplace(cfg.name, graph::generate(cfg)).first;
    }
    return it->second;
  }

 private:
  std::map<std::string, graph::DTDG> cache_;
};

inline models::TrainConfig train_config(const Flags& f, models::ModelType m) {
  models::TrainConfig cfg;
  cfg.model = m;
  cfg.frame_size = f.frame_size;
  cfg.epochs = f.epochs;
  cfg.max_frames_per_epoch = f.frames;
  return cfg;
}

enum class Method { PyGT, PyGTA, PyGTR, PyGTG, PiPAD };

inline const char* method_name(Method m) {
  switch (m) {
    case Method::PyGT:
      return "PyGT";
    case Method::PyGTA:
      return "PyGT-A";
    case Method::PyGTR:
      return "PyGT-R";
    case Method::PyGTG:
      return "PyGT-G";
    case Method::PiPAD:
      return "PiPAD";
  }
  return "?";
}

inline const std::vector<Method>& all_methods() {
  static const std::vector<Method> ms = {Method::PyGT, Method::PyGTA,
                                         Method::PyGTR, Method::PyGTG,
                                         Method::PiPAD};
  return ms;
}

inline models::TrainResult run_method(const graph::DTDG& data, Method m,
                                      const models::TrainConfig& cfg,
                                      runtime::PipadOptions popts = {}) {
  gpusim::Gpu gpu;
  switch (m) {
    case Method::PyGT:
      return baselines::BaselineTrainer(gpu, data, cfg,
                                        baselines::Variant::PyGT)
          .train();
    case Method::PyGTA:
      return baselines::BaselineTrainer(gpu, data, cfg,
                                        baselines::Variant::PyGTA)
          .train();
    case Method::PyGTR:
      return baselines::BaselineTrainer(gpu, data, cfg,
                                        baselines::Variant::PyGTR)
          .train();
    case Method::PyGTG:
      return baselines::BaselineTrainer(gpu, data, cfg,
                                        baselines::Variant::PyGTG)
          .train();
    case Method::PiPAD:
      return runtime::PipadTrainer(gpu, data, cfg, popts).train();
  }
  throw Error("bad method");
}

inline const std::vector<models::ModelType>& all_models() {
  static const std::vector<models::ModelType> ms = {
      models::ModelType::EvolveGcn, models::ModelType::MpnnLstm,
      models::ModelType::TGcn};
  return ms;
}

/// Short dataset labels matching Table 2 of the paper.
inline std::string short_name(const std::string& dataset) {
  if (dataset == "amz-automotive") return "AA";
  if (dataset == "epinions") return "EP";
  if (dataset == "flickr") return "FL";
  if (dataset == "youtube") return "YT";
  if (dataset == "hepth") return "HT";
  if (dataset == "covid19-england") return "CE";
  if (dataset == "pems08") return "PE";
  return dataset;
}

}  // namespace pipad::bench
