// Shared benchmark scaffolding: flag parsing, dataset caching, method
// runners, table printing and the bench-to-JSON harness.
//
// Every bench binary accepts:
//   --scale-large=N   divisor for the four large graphs   (default 256)
//   --scale-small=N   divisor for HepTh                    (default 8)
//   --epochs=N        training epochs                      (default 2)
//   --frames=N        max frames per epoch                 (default 4)
//   --frame-size=N    sliding-window size                  (default 8;
//                     paper uses 16 — raise for fidelity, costs runtime)
//   --threads=N       ComputePool workers (prep + numeric kernels),
//                     0 = auto                             (default 0)
//   --tuner=MODE      PiPAD S_per tuner cost source: analytic | measured
//                                                          (default analytic)
//   --replicas=K      replicated data-parallel PiPAD across K simulated
//                     devices, 0 = classic single device    (default 0)
//   --allreduce=ALGO  interconnect timing model for --replicas: ring | tree
//                     (numerics identical either way)       (default ring)
//   --datasets=a,b    comma-separated subset of the Table-1 names and/or
//                     file:PATH specs for on-disk datasets (edge list /
//                     temporal CSV / .dtdg; docs/DATASET_FORMATS.md)
//                                                          (default all 7)
//   --snapshot-window=N  file: datasets — fixed time-window width
//   --window-bytes=N  file: datasets — streaming read window in bytes
//                     (bounds parse memory; 0 = the 8 MiB loader default)
//   --cache-dir=DIR   file: datasets — .dtdg snapshot cache
//   --json=FILE       write per-run records to FILE as JSON (wired into
//                     fig10_end2end and ablation_sper; other binaries
//                     accept but ignore it until they adopt JsonReport)
//   --trace-dir=DIR   write one trace CSV per run into DIR (created if
//                     missing), named <bench>-<dataset>-<model>-<method>.csv
//                     and labeled for `pipad analyze` (wired into
//                     fig10_end2end and ablation_tuner; other binaries
//                     accept but ignore it)
// Unknown flags and non-positive scales are rejected with a usage message
// (exit code 2), mirroring the CLI driver. Defaults are sized for a
// single-core CI run; the *shape* of each figure is stable across scales
// because it derives from the analytic cost model.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/baseline_trainer.hpp"
#include "common/compute_pool.hpp"
#include "common/util.hpp"
#include "gpusim/trace.hpp"
#include "graph/generator.hpp"
#include "graph/io/loader.hpp"
#include "host/host_lane.hpp"
#include "models/bench_record.hpp"
#include "pipad/pipad_trainer.hpp"
#include "replica/allreduce.hpp"
#include "replica/replica_trainer.hpp"

namespace pipad::bench {

struct Flags {
  int scale_large = 256;
  int scale_small = 8;
  int epochs = 2;
  int frames = 4;
  int frame_size = 8;
  int threads = 0;  ///< ComputePool workers (0 = library default).
  /// S_per tuner cost source (--tuner=analytic|measured).
  runtime::TunerMode tuner = runtime::TunerMode::Analytic;
  int replicas = 0;  ///< >=1: replicated data-parallel PiPAD across K
                     ///< simulated devices (--replicas=K; 0 = classic).
  std::string allreduce = "ring";  ///< --allreduce=ring|tree (timing only).
  std::vector<std::string> datasets;
  std::string json;  ///< Non-empty: write run records to this file.
  std::string trace_dir;  ///< Non-empty: write one trace CSV per run here.
  long long snapshot_window = 0;  ///< file: datasets — time-window width.
  long long window_bytes = 0;     ///< file: datasets — streaming read
                                  ///< window in bytes (0 = 8 MiB default).
  std::string cache_dir;          ///< file: datasets — .dtdg cache.

  static std::string usage(const char* prog) {
    std::string p = prog != nullptr ? prog : "bench";
    return "usage: " + p +
           " [--scale-large=N] [--scale-small=N] [--epochs=N] [--frames=N]"
           " [--frame-size=N]\n        [--threads=N]"
           " [--tuner=analytic|measured] [--datasets=a,b,...]"
           " [--json=FILE]\n        [--trace-dir=DIR] [--snapshot-window=N]"
           " [--window-bytes=N] [--cache-dir=DIR]\n        [--replicas=K]"
           " [--allreduce=ring|tree]\n"
           "  --scale-large / --scale-small / --epochs / --frame-size /"
           " --snapshot-window\n  must be >= 1,"
           " --frames / --threads must be >= 0,\n"
           "  --datasets names must come from the Table-1 set or be"
           " file:PATH specs.\n";
  }

  /// Strict parse: unknown flags, malformed numbers, out-of-range values
  /// and unknown dataset names all print a usage message and exit(2), like
  /// the `pipad` CLI. Never returns on error.
  static Flags parse(int argc, char** argv) {
    Flags f;
    const auto die = [&](const std::string& msg) {
      std::fprintf(stderr, "%s: %s\n\n%s", argv[0], msg.c_str(),
                   usage(argv[0]).c_str());
      std::exit(2);
    };
    const auto parse_int = [&](const char* flag, const char* v, int min) {
      char* end = nullptr;
      errno = 0;
      const long n = std::strtol(v, &end, 10);
      if (*v == '\0' || end == nullptr || *end != '\0' || errno == ERANGE ||
          n < min || n > 1000000000L) {
        die(std::string(flag) + " expects an integer >= " +
            std::to_string(min) + ", got '" + v + "'");
      }
      return static_cast<int>(n);
    };
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto eq = arg.find('=');
      if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
        die("unknown argument '" + arg + "' (flags are --name=value)");
      }
      const std::string key = arg.substr(0, eq);
      const std::string value = arg.substr(eq + 1);
      if (key == "--scale-large") {
        f.scale_large = parse_int("--scale-large", value.c_str(), 1);
      } else if (key == "--scale-small") {
        f.scale_small = parse_int("--scale-small", value.c_str(), 1);
      } else if (key == "--epochs") {
        f.epochs = parse_int("--epochs", value.c_str(), 1);
      } else if (key == "--frames") {
        f.frames = parse_int("--frames", value.c_str(), 0);
      } else if (key == "--frame-size") {
        f.frame_size = parse_int("--frame-size", value.c_str(), 1);
      } else if (key == "--threads") {
        f.threads = parse_int("--threads", value.c_str(), 0);
      } else if (key == "--tuner") {
        if (!runtime::parse_tuner_mode(value, f.tuner)) {
          die("--tuner expects analytic or measured, got '" + value + "'");
        }
      } else if (key == "--replicas") {
        f.replicas = parse_int("--replicas", value.c_str(), 0);
        if (f.replicas > 64) die("--replicas must be <= 64");
      } else if (key == "--allreduce") {
        replica::AllReduceAlgo algo;
        if (!replica::parse_allreduce(value, algo)) {
          die("--allreduce expects ring or tree, got '" + value + "'");
        }
        f.allreduce = value;
      } else if (key == "--json") {
        if (value.empty()) die("--json expects a file path");
        f.json = value;
      } else if (key == "--trace-dir") {
        if (value.empty()) die("--trace-dir expects a directory path");
        f.trace_dir = value;
      } else if (key == "--snapshot-window") {
        f.snapshot_window = parse_int("--snapshot-window", value.c_str(), 1);
      } else if (key == "--window-bytes") {
        f.window_bytes = parse_int("--window-bytes", value.c_str(), 1);
      } else if (key == "--cache-dir") {
        if (value.empty()) die("--cache-dir expects a directory path");
        f.cache_dir = value;
      } else if (key == "--datasets") {
        if (value.empty()) die("--datasets expects a comma-separated list");
        std::size_t pos = 0;
        while (pos != std::string::npos) {
          const auto next = value.find(',', pos);
          const std::string name = value.substr(
              pos, next == std::string::npos ? next : next - pos);
          bool known = graph::io::is_file_dataset(name);
          for (const auto& c : graph::evaluation_datasets()) {
            if (c.name == name) known = true;
          }
          if (!known) die("unknown dataset '" + name + "'");
          f.datasets.push_back(name);
          pos = next == std::string::npos ? next : next + 1;
        }
      } else {
        die("unknown flag '" + key + "'");
      }
    }
    return f;
  }

  std::vector<graph::DatasetConfig> configs() const {
    auto all = graph::evaluation_datasets(scale_large, scale_small);
    if (datasets.empty()) return all;
    std::vector<graph::DatasetConfig> out;
    for (const auto& want : datasets) {
      if (graph::io::is_file_dataset(want)) {
        // On-disk dataset: the name carries the whole spec; DatasetCache
        // dispatches on the prefix.
        graph::DatasetConfig c;
        c.name = want;
        out.push_back(c);
        continue;
      }
      for (const auto& c : all) {
        if (c.name == want) out.push_back(c);
      }
    }
    return out;
  }

  /// Loader options for file: dataset specs.
  graph::io::LoadOptions file_load_options() const {
    graph::io::LoadOptions o;
    o.snapshot_window = snapshot_window;
    o.cache_dir = cache_dir;
    o.window_bytes = static_cast<std::size_t>(window_bytes);
    return o;
  }
};

/// PiPAD runtime options derived from the shared flags.
inline runtime::PipadOptions pipad_options(const Flags& f) {
  runtime::PipadOptions o;
  o.host_threads = f.threads;
  o.tuner = f.tuner;
  o.replicas = f.replicas;
  o.allreduce = f.allreduce;
  return o;
}

/// Dataset construction is the slow part; cache per process and build each
/// snapshot on the process-wide ComputePool. Constructed from the shared
/// Flags so --threads=N governs generation, loading, host prep and the
/// numeric kernels alike (0 = library default), and so file: specs pick up
/// --snapshot-window/--cache-dir.
class DatasetCache {
 public:
  explicit DatasetCache(const Flags& flags)
      : file_opts_(flags.file_load_options()) {
    ComputePool::instance().configure(
        flags.threads > 0 ? static_cast<std::size_t>(flags.threads) : 0);
  }

  const graph::DTDG& get(const graph::DatasetConfig& cfg) {
    auto it = cache_.find(cfg.name);
    if (it == cache_.end()) {
      if (graph::io::is_file_dataset(cfg.name)) {
        std::fprintf(stderr, "[bench] loading %s ...\n", cfg.name.c_str());
        it = cache_
                 .emplace(cfg.name,
                          graph::io::load_dataset(
                              graph::io::file_dataset_path(cfg.name),
                              file_opts_, &ComputePool::instance().pool()))
                 .first;
      } else {
        std::fprintf(stderr, "[bench] generating %s ...\n", cfg.name.c_str());
        it = cache_
                 .emplace(cfg.name, graph::generate(
                                        cfg, &ComputePool::instance().pool()))
                 .first;
      }
    }
    return it->second;
  }

 private:
  graph::io::LoadOptions file_opts_;
  std::map<std::string, graph::DTDG> cache_;
};

inline models::TrainConfig train_config(const Flags& f, models::ModelType m) {
  models::TrainConfig cfg;
  cfg.model = m;
  cfg.frame_size = f.frame_size;
  cfg.epochs = f.epochs;
  cfg.max_frames_per_epoch = f.frames;
  return cfg;
}

enum class Method { PyGT, PyGTA, PyGTR, PyGTG, PiPAD };

inline const char* method_name(Method m) {
  switch (m) {
    case Method::PyGT:
      return "PyGT";
    case Method::PyGTA:
      return "PyGT-A";
    case Method::PyGTR:
      return "PyGT-R";
    case Method::PyGTG:
      return "PyGT-G";
    case Method::PiPAD:
      return "PiPAD";
  }
  return "?";
}

inline const std::vector<Method>& all_methods() {
  static const std::vector<Method> ms = {Method::PyGT, Method::PyGTA,
                                         Method::PyGTR, Method::PyGTG,
                                         Method::PiPAD};
  return ms;
}

/// Train on a caller-owned Gpu, leaving the timeline available for trace
/// export (--trace-dir) or analysis.
inline models::TrainResult run_method(gpusim::Gpu& gpu,
                                      const graph::DTDG& data, Method m,
                                      const models::TrainConfig& cfg,
                                      runtime::PipadOptions popts = {}) {
  switch (m) {
    case Method::PyGT:
      return baselines::BaselineTrainer(gpu, data, cfg,
                                        baselines::Variant::PyGT)
          .train();
    case Method::PyGTA:
      return baselines::BaselineTrainer(gpu, data, cfg,
                                        baselines::Variant::PyGTA)
          .train();
    case Method::PyGTR:
      return baselines::BaselineTrainer(gpu, data, cfg,
                                        baselines::Variant::PyGTR)
          .train();
    case Method::PyGTG:
      return baselines::BaselineTrainer(gpu, data, cfg,
                                        baselines::Variant::PyGTG)
          .train();
    case Method::PiPAD:
      if (popts.replicas > 0) {
        return replica::ReplicaTrainer(gpu, data, cfg, popts).train();
      }
      return runtime::PipadTrainer(gpu, data, cfg, popts).train();
  }
  throw Error("bad method");
}

inline models::TrainResult run_method(const graph::DTDG& data, Method m,
                                      const models::TrainConfig& cfg,
                                      runtime::PipadOptions popts = {}) {
  gpusim::Gpu gpu;
  return run_method(gpu, data, m, cfg, popts);
}

/// "PiPAD[batch]" -> "PiPAD_batch_": trace filenames stay portable.
inline std::string trace_file_component(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    const bool ok = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) c = '_';
  }
  return out.empty() ? std::string("trace") : out;
}

/// Write one labeled trace CSV under flags.trace_dir (no-op when the flag
/// is unset). The file lands at DIR/<bench>-<dataset>-<model>-<method>.csv
/// so CI can feed it straight to `pipad analyze`.
inline void write_trace(const Flags& flags, const std::string& bench,
                        const gpusim::Gpu& gpu, const std::string& dataset,
                        const std::string& model, const std::string& method) {
  if (flags.trace_dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(flags.trace_dir, ec);
  const std::string path = flags.trace_dir + "/" +
                           trace_file_component(bench) + "-" +
                           trace_file_component(dataset) + "-" +
                           trace_file_component(model) + "-" +
                           trace_file_component(method) + ".csv";
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "[bench] cannot open %s for writing\n",
                 path.c_str());
    return;
  }
  gpusim::write_trace_csv(gpu.timeline(), os,
                          gpusim::TraceMeta{dataset, model, method});
  std::fprintf(stderr, "[bench] trace written to %s\n", path.c_str());
}

inline const std::vector<models::ModelType>& all_models() {
  static const std::vector<models::ModelType> ms = {
      models::ModelType::EvolveGcn, models::ModelType::MpnnLstm,
      models::ModelType::TGcn};
  return ms;
}

/// Short dataset labels matching Table 2 of the paper.
inline std::string short_name(const std::string& dataset) {
  if (dataset == "amz-automotive") return "AA";
  if (dataset == "epinions") return "EP";
  if (dataset == "flickr") return "FL";
  if (dataset == "youtube") return "YT";
  if (dataset == "hepth") return "HT";
  if (dataset == "covid19-england") return "CE";
  if (dataset == "pems08") return "PE";
  return dataset;
}

/// Bench-to-JSON harness: collects one record per (dataset, model, method)
/// run and writes them as a stable JSON document so the perf trajectory can
/// be diffed across commits (BENCH_*.json baselines, CI artifacts).
class JsonReport {
 public:
  JsonReport(std::string bench, const Flags& flags)
      : bench_(std::move(bench)), flags_(flags) {}

  void add(const std::string& dataset, const std::string& model,
           const std::string& method, const models::TrainResult& r) {
    rows_.push_back(Row{dataset, model, method, r});
  }

  bool empty() const { return rows_.empty(); }

  /// Write the collected records; returns false (with a message on stderr)
  /// when the file cannot be opened.
  bool write(const std::string& path) const {
    std::ofstream os(path);
    if (!os) {
      std::fprintf(stderr, "[bench] cannot open %s for writing\n",
                   path.c_str());
      return false;
    }
    os << "{\n  \"bench\": \"" << bench_ << "\",\n"
       << "  \"flags\": {\"scale_large\": " << flags_.scale_large
       << ", \"scale_small\": " << flags_.scale_small
       << ", \"epochs\": " << flags_.epochs
       << ", \"frames\": " << flags_.frames
       << ", \"frame_size\": " << flags_.frame_size
       << ", \"threads\": " << flags_.threads << "},\n"
       << "  \"records\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      os << models::bench_record_json(r.dataset, r.model, r.method,
                                      r.result.total_us / flags_.epochs,
                                      r.result)
         << (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
    return static_cast<bool>(os);
  }

  /// Write when --json was given; prints a confirmation line.
  bool write_if_requested() const {
    if (flags_.json.empty()) return true;
    if (!write(flags_.json)) return false;
    std::printf("\n[bench] %zu records written to %s\n", rows_.size(),
                flags_.json.c_str());
    return true;
  }

 private:
  struct Row {
    std::string dataset, model, method;
    models::TrainResult result;
  };
  std::string bench_;
  Flags flags_;
  std::vector<Row> rows_;
};

}  // namespace pipad::bench
