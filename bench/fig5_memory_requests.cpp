// Figure 5: global-memory requests (#R) and 32-byte transactions (#T) of
// the GCN aggregation as the feature dimension sweeps — the §3.2
// motivation experiment (run with a GNNAdvisor/GE-SpMM-style kernel).
//
// Expected shape: both curves flat for small F; #T starts rising past F=8
// (transaction granularity 32 B), #R past F=32 (warp request width 128 B).
#include <cstdio>

#include "bench_util.hpp"
#include "kernels/aggregate.hpp"

int main(int argc, char** argv) {
  using namespace pipad;
  const auto flags = bench::Flags::parse(argc, argv);

  // Synthetic graph in the GNNAdvisor experiment's regime.
  auto cfg = graph::dataset_by_name("hepth", flags.job.scale_large,
                                    flags.job.scale_small);
  cfg.num_snapshots = 1;
  const auto g = graph::generate(cfg);
  const auto& adj = g.snapshots[0].adj;

  std::printf(
      "Figure 5: #global memory requests / transactions vs feature dim\n"
      "(GE-SpMM-style aggregation, %s-shaped graph: %d vertices, %zu nnz)\n\n",
      cfg.name.c_str(), g.num_nodes, adj.nnz());
  std::printf("%6s %16s %16s\n", "F", "#R", "#T");

  Rng rng(3);
  for (int f : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    const Tensor x = Tensor::randn(g.num_nodes, f, rng);
    Tensor out(g.num_nodes, f);
    const auto st = kernels::agg_gespmm(adj, x, out);
    std::printf("%6d %16s %16s\n", f,
                with_commas(st.global_requests).c_str(),
                with_commas(st.global_transactions).c_str());
  }
  std::printf(
      "\nShape check: #T flat until F=8 then rises; #R flat until F=32 then\n"
      "rises (bandwidth unsaturation below, request burst above — §3.2).\n");
  return 0;
}
