// Pipeline trace — reproduces the *structure* of Fig. 8: how PiPAD
// overlaps CPU-side preparation, PCIe transfers, and GPU compute, versus
// the serialized PyGT schedule. Renders an ASCII Gantt chart per method
// and writes full CSV traces for external plotting.
//
//   $ ./build/examples/pipeline_trace
#include <cstdio>
#include <fstream>

#include "baselines/baseline_trainer.hpp"
#include "gpusim/trace.hpp"
#include "graph/generator.hpp"
#include "pipad/pipad_trainer.hpp"

int main() {
  using namespace pipad;

  const auto cfg = graph::dataset_by_name("epinions", /*scale_large=*/256);
  const graph::DTDG data = graph::generate(cfg);

  models::TrainConfig tcfg;
  tcfg.model = models::ModelType::MpnnLstm;
  tcfg.frame_size = 8;
  tcfg.epochs = 2;
  tcfg.max_frames_per_epoch = 4;

  gpusim::Gpu gpu_base;
  baselines::BaselineTrainer base(gpu_base, data, tcfg,
                                  baselines::Variant::PyGT);
  base.train();

  gpusim::Gpu gpu_pipad;
  runtime::PipadTrainer pipad(gpu_pipad, data, tcfg);
  pipad.train();

  gpusim::GanttOptions opts;
  opts.width = 100;
  std::printf("=== PyGT (synchronous, one snapshot at a time) ===\n%s\n",
              gpusim::render_gantt(gpu_base.timeline(), opts).c_str());
  std::printf("=== PiPAD (pipelined, partition-parallel) ===\n%s\n",
              gpusim::render_gantt(gpu_pipad.timeline(), opts).c_str());

  using gpusim::Resource;
  std::printf("copy/compute overlap: PyGT %.0f%%   PiPAD %.0f%%\n",
              100.0 * gpusim::overlap_fraction(gpu_base.timeline(),
                                               Resource::H2D,
                                               Resource::Compute),
              100.0 * gpusim::overlap_fraction(gpu_pipad.timeline(),
                                               Resource::H2D,
                                               Resource::Compute));

  std::ofstream csv("pipeline_trace_pipad.csv");
  gpusim::write_trace_csv(gpu_pipad.timeline(), csv);
  std::printf("full PiPAD trace written to pipeline_trace_pipad.csv (%zu ops)\n",
              gpu_pipad.timeline().records().size());
  return 0;
}
