// Quickstart: generate a small dynamic graph, train a DGNN with PiPAD, and
// compare against the PyGT baseline — the library's 30-second tour.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "baselines/baseline_trainer.hpp"
#include "graph/generator.hpp"
#include "pipad/pipad_trainer.hpp"

int main() {
  using namespace pipad;

  // 1. A dynamic graph: 5k vertices, ~40k edges per snapshot, 24 snapshots,
  //    slowly evolving topology (edge life 8 steps => ~78 % overlap).
  graph::DatasetConfig cfg;
  cfg.name = "quickstart";
  cfg.num_nodes = 5000;
  cfg.raw_events = 120000;
  cfg.num_snapshots = 24;
  cfg.feat_dim = 2;
  cfg.edge_life = 8.0;
  const graph::DTDG data = graph::generate(cfg);
  std::printf("dataset: %d vertices, %zu total edge instances, %d snapshots\n",
              data.num_nodes, data.total_edges(), data.num_snapshots());

  // 2. Training configuration: MPNN-LSTM over sliding frames of 8.
  models::TrainConfig tcfg;
  tcfg.model = models::ModelType::MpnnLstm;
  tcfg.frame_size = 8;
  tcfg.epochs = 3;
  tcfg.max_frames_per_epoch = 6;

  // 3. Baseline: PyGT-style one-snapshot-at-a-time training.
  gpusim::Gpu gpu_base;
  baselines::BaselineTrainer base(gpu_base, data, tcfg,
                                  baselines::Variant::PyGT);
  const auto rb = base.train();

  // 4. PiPAD: sliced CSR, overlap-aware transfer, parallel multi-snapshot
  //    GNN, inter-frame reuse, pipelined execution.
  gpusim::Gpu gpu_pipad;
  runtime::PipadTrainer pipad(gpu_pipad, data, tcfg);
  const auto rp = pipad.train();

  std::printf("\n%-8s %14s %14s %12s %10s\n", "method", "sim total (us)",
              "transfer (us)", "SM util", "last loss");
  std::printf("%-8s %14.0f %14.0f %11.1f%% %10.4f\n", "PyGT", rb.total_us,
              rb.transfer_us, 100.0 * rb.sm_utilization, rb.final_loss());
  std::printf("%-8s %14.0f %14.0f %11.1f%% %10.4f\n", "PiPAD", rp.total_us,
              rp.transfer_us, 100.0 * rp.sm_utilization, rp.final_loss());
  std::printf("\nPiPAD end-to-end speedup: %.2fx\n", rb.total_us / rp.total_us);
  std::printf("tuner decisions (frame start -> S_per):");
  for (const auto& [start, s] : pipad.sper_decisions()) {
    std::printf(" %d->%d", start, s);
  }
  std::printf("\n");
  return 0;
}
