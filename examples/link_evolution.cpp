// Trust-network evolution with EvolveGCN on an Epinions-shaped graph — the
// weight-evolving DGNN use case (Pareja et al., AAAI'20). EvolveGCN's GCN
// weights change every snapshot, so PiPAD's weight reuse is inapplicable;
// the win comes from the parallel aggregation and the pipeline. This
// example also demonstrates the dynamic tuner reacting to frame overlap.
//
//   $ ./build/examples/link_evolution
#include <cstdio>
#include <map>

#include "graph/generator.hpp"
#include "pipad/pipad_trainer.hpp"

int main() {
  using namespace pipad;

  const auto cfg = graph::dataset_by_name("epinions", /*scale_large=*/256);
  const graph::DTDG data = graph::generate(cfg);
  const auto stats = graph::compute_stats(data);
  std::printf(
      "trust network (1/256 scale): %d users, ~%zu edges per snapshot, "
      "%d snapshots, adjacent overlap %.0f%%\n",
      data.num_nodes, stats.smoothed_edges / data.num_snapshots(),
      data.num_snapshots(), 100.0 * stats.mean_adjacent_overlap);

  models::TrainConfig tcfg;
  tcfg.model = models::ModelType::EvolveGcn;
  tcfg.frame_size = 8;
  tcfg.epochs = 4;
  tcfg.max_frames_per_epoch = 10;

  gpusim::Gpu gpu;
  runtime::PipadTrainer trainer(gpu, data, tcfg);
  const auto r = trainer.train();

  std::printf("\ntuner S_per decisions per frame:\n  ");
  std::map<int, int> histogram;
  for (const auto& [start, s] : trainer.sper_decisions()) {
    ++histogram[s];
  }
  for (const auto& [s, count] : histogram) {
    std::printf("S_per=%d on %d frames   ", s, count);
  }
  std::printf("\n\nfirst/last frame loss: %.4f -> %.4f over %zu frames\n",
              r.frame_loss.front(), r.frame_loss.back(),
              r.frame_loss.size());
  std::printf(
      "simulated time %.1f ms (transfer %.1f%%, GNN %.0f%% of compute, "
      "weight-evolution RNN %.0f%%)\n",
      r.total_us / 1000.0, 100.0 * r.transfer_us / r.total_us,
      100.0 * r.gnn_us / r.compute_us, 100.0 * r.rnn_us / r.compute_us);
  std::printf("device peak memory (simulated): %s\n",
              human_bytes(gpu.device().peak()).c_str());
  return 0;
}
