// Pandemic forecasting — the MPNN-LSTM use case from the paper's intro
// (Panagopoulos et al., AAAI'21): regions are vertices, mobility flows are
// edges that change daily, and the model regresses the next-step case
// signal per region from graph structure plus temporal dynamics.
//
//   $ ./build/examples/pandemic_forecast
#include <cstdio>

#include "graph/generator.hpp"
#include "pipad/pipad_trainer.hpp"

int main() {
  using namespace pipad;

  // Covid19-England-shaped data: 130 regions, dense mobility graph whose
  // topology changes quickly (edge life ~1.3 snapshots), 61 daily steps.
  const auto cfg = graph::dataset_by_name("covid19-england");
  const graph::DTDG data = graph::generate(cfg);
  const auto stats = graph::compute_stats(data);
  std::printf(
      "mobility graph: %d regions, %zu distinct flows, %d days, "
      "adjacent-day overlap %.0f%%\n",
      data.num_nodes, stats.distinct_edges, data.num_snapshots(),
      100.0 * stats.mean_adjacent_overlap);

  models::TrainConfig tcfg;
  tcfg.model = models::ModelType::MpnnLstm;
  tcfg.frame_size = 8;   // One-week-and-a-day history window.
  tcfg.epochs = 8;
  tcfg.lr = 2e-3f;

  gpusim::Gpu gpu;
  runtime::PipadTrainer trainer(gpu, data, tcfg);
  const auto r = trainer.train();

  std::printf("\ntraining loss trajectory (per frame):\n");
  const std::size_t per_epoch = r.frame_loss.size() / tcfg.epochs;
  for (int e = 0; e < tcfg.epochs; ++e) {
    double s = 0.0;
    for (std::size_t i = e * per_epoch; i < (e + 1) * per_epoch; ++i) {
      s += r.frame_loss[i];
    }
    std::printf("  epoch %d: mean MSE %.4f%s\n", e, s / per_epoch,
                e == 0 ? "   (preparing epoch: one-snapshot + profiling)"
                       : "");
  }
  std::printf(
      "\nsimulated training time %.1f ms; transfer share %.1f%%; "
      "GNN/RNN compute split %.0f%%/%.0f%%\n",
      r.total_us / 1000.0, 100.0 * r.transfer_us / r.total_us,
      100.0 * r.gnn_us / r.compute_us, 100.0 * r.rnn_us / r.compute_us);
  return 0;
}
