// Traffic forecasting with T-GCN on a PEMS08-shaped sensor network — the
// integrated-DGNN use case (Zhao et al., T-ITS'19): static road topology,
// evolving node signals. Because all of T-GCN's aggregation operates on raw
// inputs, inter-frame reuse eliminates the aggregation entirely after the
// preparing epoch (§5.2) — this example prints the evidence.
//
//   $ ./build/examples/traffic_forecast
#include <cstdio>

#include "graph/generator.hpp"
#include "pipad/pipad_trainer.hpp"

int main() {
  using namespace pipad;

  const auto cfg = graph::dataset_by_name("pems08");
  const graph::DTDG data = graph::generate(cfg);
  std::printf("sensor network: %d detectors, %zu directed links (static), "
              "%d 5-minute intervals\n",
              data.num_nodes, data.snapshots[0].nnz(), data.num_snapshots());

  models::TrainConfig tcfg;
  tcfg.model = models::ModelType::TGcn;
  tcfg.frame_size = 12;  // One hour of history.
  tcfg.epochs = 6;
  tcfg.lr = 2e-3f;

  auto run = [&](bool reuse) {
    gpusim::Gpu gpu;
    runtime::PipadOptions opts;
    opts.enable_reuse = reuse;
    runtime::PipadTrainer trainer(gpu, data, tcfg, opts);
    return trainer.train();
  };

  const auto with = run(true);
  const auto without = run(false);

  std::printf("\n%-22s %16s %16s\n", "", "reuse ON", "reuse OFF");
  std::printf("%-22s %16.0f %16.0f\n", "sim total (us)", with.total_us,
              without.total_us);
  std::printf("%-22s %16s %16s\n", "agg transactions",
              with_commas(with.agg_stats.global_transactions).c_str(),
              with_commas(without.agg_stats.global_transactions).c_str());
  std::printf("%-22s %16.4f %16.4f\n", "final loss", with.final_loss(),
              without.final_loss());
  std::printf(
      "\nWith reuse, aggregation survives only in the preparing epoch "
      "(%.0f%% fewer\naggregation transactions) and losses match — the "
      "cached results are exact.\n",
      100.0 * (1.0 - static_cast<double>(
                         with.agg_stats.global_transactions) /
                         without.agg_stats.global_transactions));
  return 0;
}
